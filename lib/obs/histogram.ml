(* Deterministic log-bucketed latency/size distributions.  Like
   {!Counter}, histogram *names* are registered process-wide while the
   *buckets* live in per-domain cells reached through [Domain.DLS]: an
   [observe] is a hash-table bump on the owning domain and never touches a
   lock.  Bucket counts are integers and bucket boundaries are exact
   powers-of-two fractions computed with [frexp]/[ldexp] (no [log]/[**],
   whose last-bit behaviour varies across libms), so merging snapshots is
   exact integer addition: the merged distribution is bit-identical for
   every domain count and schedule. *)

type unit_ = Count | Seconds

type t = { name : string; index : int; unit_ : unit_ }

type snap = {
  s_unit : unit_;
  count : int;
  sum : float;
  zeros : int;
  buckets : (int * int) list;
}

(* Process-wide name registry, mirroring {!Counter}'s. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let registry_lock = Mutex.create ()

(* Atomic for the same reason as {!Counter.registered}: the DLS init
   closure reads it from worker domains while [make] may run elsewhere. *)
let registered = Atomic.make 0

type cell = {
  mutable c_count : int;
  mutable c_sum : float;
  mutable c_zeros : int;
  c_buckets : (int, int ref) Hashtbl.t;
}

let new_cell () =
  { c_count = 0; c_sum = 0.; c_zeros = 0; c_buckets = Hashtbl.create 8 }

(* Per-domain cells, indexed by [t.index]; grows on demand like
   {!Counter.cells}. *)
let cells_key : cell array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      ref (Array.init (max 8 (Atomic.get registered)) (fun _ -> new_cell ())))

let cells (h : t) =
  let r = Domain.DLS.get cells_key in
  let arr = !r in
  if h.index < Array.length arr then arr
  else begin
    let n = max (h.index + 1) (2 * Array.length arr) in
    let grown =
      Array.init n (fun i ->
          if i < Array.length arr then arr.(i) else new_cell ())
    in
    r := grown;
    grown
  end

let make ?(unit_ = Count) name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
        let h = { name; index = Atomic.get registered; unit_ } in
        Atomic.incr registered;
        Hashtbl.replace registry name h;
        h)

let name h = h.name

let kind h = h.unit_

(* Four sub-buckets per octave.  For v > 0, [frexp v = (m, e)] with
   m ∈ [0.5, 1); the sub-bucket is the largest k with m >= thresholds.(k).
   The thresholds are the doubles nearest 2^-1, 2^-0.75, 2^-0.5, 2^-0.25 —
   literals, so bucketing never calls into libm and is bit-identical on
   every platform.  The resulting bucket index is [4*e + k], giving
   relative bucket width 2^0.25 ≈ 1.19 (percentile error < 19 %). *)
let sub_thresholds =
  [| 0.5; 0.59460355750136051; 0.70710678118654757; 0.84089641525371461 |]
[@@indq.domain_safe
  "write-free after initialization: constant bucket thresholds, read-only \
   lookup table shared by all domains"]

let sub_buckets = Array.length sub_thresholds

let bucket_of v =
  let m, e = Float.frexp v in
  let k = ref 0 in
  for i = 1 to sub_buckets - 1 do
    if m >= sub_thresholds.(i) then k := i
  done;
  (sub_buckets * e) + !k

(* Inclusive lower / exclusive upper bound of a bucket, via [ldexp] —
   exact, and the inverse of [bucket_of] by construction. *)
let bucket_bounds index =
  let k = ((index mod sub_buckets) + sub_buckets) mod sub_buckets in
  let e = (index - k) / sub_buckets in
  let lower = Float.ldexp sub_thresholds.(k) e in
  let upper =
    if k = sub_buckets - 1 then Float.ldexp sub_thresholds.(0) (e + 1)
    else Float.ldexp sub_thresholds.(k + 1) e
  in
  (lower, upper)

let observe h v =
  let c = (cells h).(h.index) in
  c.c_count <- c.c_count + 1;
  c.c_sum <- c.c_sum +. v;
  if v > 0. then begin
    let i = bucket_of v in
    match Hashtbl.find_opt c.c_buckets i with
    | Some r -> incr r
    | None -> Hashtbl.replace c.c_buckets i (ref 1)
  end
  else c.c_zeros <- c.c_zeros + 1

let snap_of_cell u c =
  let buckets =
    Hashtbl.fold (fun i r acc -> (i, !r) :: acc) c.c_buckets []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  { s_unit = u; count = c.c_count; sum = c.c_sum; zeros = c.c_zeros; buckets }

let value h = snap_of_cell h.unit_ (cells h).(h.index)

let empty u = { s_unit = u; count = 0; sum = 0.; zeros = 0; buckets = [] }

let is_empty_snap s = s.count = 0

(* Pointwise bucket arithmetic on sorted assoc lists.  [op] is applied to
   matched pairs; unmatched indices keep (or negate, for subtraction)
   their single side.  Zero-count buckets are dropped so snaps stay
   canonical and comparable with [=]. *)
let merge_buckets op a b =
  let rec go a b =
    match (a, b) with
    | [], rest -> List.map (fun (i, n) -> (i, op 0 n)) rest
    | rest, [] -> rest
    | (ia, na) :: ta, (ib, nb) :: tb ->
      if ia < ib then (ia, na) :: go ta b
      else if ib < ia then (ib, op 0 nb) :: go a tb
      else (ia, op na nb) :: go ta tb
  in
  List.filter (fun (_, n) -> n <> 0) (go a b)

let combine a b =
  {
    s_unit = a.s_unit;
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    zeros = a.zeros + b.zeros;
    buckets = merge_buckets (fun x y -> x + y) a.buckets b.buckets;
  }

let sub_snap a b =
  {
    s_unit = a.s_unit;
    count = a.count - b.count;
    sum = a.sum -. b.sum;
    zeros = a.zeros - b.zeros;
    buckets = merge_buckets (fun x y -> x - y) a.buckets b.buckets;
  }

(* Every registered histogram, sorted by name (same rationale as
   {!Counter.all}: report order must not depend on initialization order). *)
let all () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold (fun _ h acc -> h :: acc) registry [])
  |> List.sort (fun a b -> String.compare a.name b.name)

let find name =
  Mutex.protect registry_lock (fun () -> Hashtbl.find_opt registry name)

let snapshot () = List.map (fun h -> (h.name, value h)) (all ())

let since before =
  List.filter_map
    (fun (n, v) ->
      let d =
        match List.assoc_opt n before with
        | Some b -> sub_snap v b
        | None -> v
      in
      if is_empty_snap d then None else Some (n, d))
    (snapshot ())

let merge deltas =
  List.iter
    (fun (n, s) ->
      let h = make ~unit_:s.s_unit n in
      let c = (cells h).(h.index) in
      c.c_count <- c.c_count + s.count;
      c.c_sum <- c.c_sum +. s.sum;
      c.c_zeros <- c.c_zeros + s.zeros;
      List.iter
        (fun (i, n) ->
          match Hashtbl.find_opt c.c_buckets i with
          | Some r -> r := !r + n
          | None -> Hashtbl.replace c.c_buckets i (ref n))
        s.buckets)
    deltas

let reset_all () =
  List.iter
    (fun h ->
      let c = (cells h).(h.index) in
      c.c_count <- 0;
      c.c_sum <- 0.;
      c.c_zeros <- 0;
      Hashtbl.reset c.c_buckets)
    (all ())

(* Percentile estimate: the value at rank ceil(p·count) (1-based, nearest-
   rank definition), reported as the *upper bound* of the bucket holding
   that rank — a deterministic over-estimate within one bucket width.
   Non-positive observations all report 0. *)
let percentile s p =
  if s.count = 0 then 0.
  else begin
    let p = Float.min 1. (Float.max 0. p) in
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (p *. float_of_int s.count)))
    in
    if rank <= s.zeros then 0.
    else begin
      let acc = ref s.zeros in
      let result = ref 0. in
      let found = ref false in
      List.iter
        (fun (i, n) ->
          if not !found then begin
            acc := !acc + n;
            if rank <= !acc then begin
              result := snd (bucket_bounds i);
              found := true
            end
          end)
        s.buckets;
      if !found then !result
      else
        match List.rev s.buckets with
        | (i, _) :: _ -> snd (bucket_bounds i)
        | [] -> 0.
    end
  end

let p50 s = percentile s 0.50

let p90 s = percentile s 0.90

let p99 s = percentile s 0.99

let mean s = if s.count = 0 then 0. else s.sum /. float_of_int s.count
