(* Benchmark harness: regenerates every figure and table of the paper's
   evaluation (Section VII).  See DESIGN.md for the experiment index and
   EXPERIMENTS.md for paper-vs-measured notes.

   Usage:
     dune exec bench/main.exe                    # everything, paper settings
     dune exec bench/main.exe -- fig2 tab3       # a subset
     dune exec bench/main.exe -- -quick          # smoke-test sizes
     dune exec bench/main.exe -- -scale 0.25 fig4
   Experiments: fig1 fig2 fig3 fig4 fig5 tab3 tab4 fig6 fig7 bechamel *)

module Experiments = Indq_experiments.Experiments
module Report = Indq_experiments.Report
module Pool = Indq_exec.Pool
module Wire = Indq_server.Wire
module Journal_store = Indq_server.Journal_store
module Engine = Indq_server.Engine
module Server = Indq_server.Server
module Sclient = Indq_server.Client

let seed = ref 2024
let scale = ref 1.0
let utilities = ref 10
let max_n = ref 1_000_000
let quick = ref false
let metrics = ref false
let faults = ref false
let lp_micro = ref false
let serve_bench = ref false
let jobs = ref 1
let with_times = ref true
let cold = ref false
let json_file = ref ""
let cache_dir = ref ""
let selected : string list ref = ref []

(* Sweeps recorded for -json, in run order, tagged with their experiment
   name.  Only sweep-shaped experiments (the fig and tab families) are
   recorded; the bechamel and ablation sections print free-form tables and
   stay text-only. *)
let recorded_sweeps : (string * Experiments.sweep) list ref = ref []

(* Per-round allocation probe from the -scale experiment: for every
   interactive round, (total minor words allocated by the round, minor
   words allocated inside the [@indq.alloc_free] flat-sweep kernel).
   The second number is the dynamic cross-check of the static ANA002
   claim — it must be exactly 0 every round.  Emitted as the
   "scale_probe" section of the JSON report when -json is given. *)
let scale_probe : (float * float) list ref = ref []
let current_experiment = ref ""

let record sweep =
  if !json_file <> "" then
    recorded_sweeps := (!current_experiment, sweep) :: !recorded_sweeps;
  sweep

(* Set once in [main]; sweeps are deterministic for every pool size, so the
   pool never appears in the printed output. *)
let pool : Pool.t option ref = ref None

let usage = "main.exe [-quick] [-metrics] [-j N] [-no-times] [-cold] [-json FILE] [-scale S] [-cache DIR] [-utilities K] [-max-n N] [-seed S] [-faults] [-lp] [-serve] [experiments...]"

let spec =
  [
    ("-seed", Arg.Set_int seed, "random seed (default 2024)");
    ("-scale", Arg.Set_float scale,
     "dataset size scale, > 0 (default 1.0; > 1 super-sizes, e.g. the scale \
      experiment maps 100 to n=10^7)");
    ("-utilities", Arg.Set_int utilities, "random utility functions per cell (default 10)");
    ("-max-n", Arg.Set_int max_n, "cap for the fig6 scalability sweep (default 1000000)");
    ("-quick", Arg.Set quick, "smoke-test settings (scale 0.05, 3 utilities, max-n 10000)");
    ("-metrics", Arg.Set metrics, "also print mean per-run work counters per sweep");
    ("-j", Arg.Set_int jobs, "worker domains for sweep trials (default 1 = sequential)");
    ("-no-times", Arg.Clear with_times,
     "omit every wall-clock figure so output is identical across -j values");
    ("-cold", Arg.Set cold,
     "disable the incremental geometry engine (re-solve every LP from \
      scratch); results must be identical, only counters and time change");
    ("-json", Arg.Set_string json_file,
     "also write the recorded sweeps as a machine-readable JSON report");
    ("-cache", Arg.Set_string cache_dir,
     "skyline-artifact cache directory for the scale experiment (persists \
      (1+eps)-skyline row positions keyed by dataset fingerprint; omitted \
      = always recompute)");
    ("-faults", Arg.Set faults,
     "run the deterministic fault-injection matrix (one armed site at a \
      time, plan derived from -seed) instead of the default experiments");
    ("-lp", Arg.Set lp_micro,
     "run the LP micro-benchmark (flat-kernel throughput, dual-simplex \
      vs two-phase latency) instead of the default experiments");
    ("-serve", Arg.Set serve_bench,
     "run the session-server load benchmark (socket load generation plus \
      the eviction-transparency check) instead of the default experiments");
  ]

let print_sweep sweep =
  let sweep = record sweep in
  Report.print_sweep ~with_metrics:!metrics ~with_times:!with_times sweep

let print_time_sweep ~labels sweep =
  let sweep = record sweep in
  Report.print_time_sweep ~with_metrics:!metrics ~with_times:!with_times
    ~labels sweep

let section title = Printf.printf "#### %s ####\n\n%!" title

let run_fig1 () =
  section "fig1";
  print_sweep
    (Experiments.fig1 ~utilities:!utilities ~scale:!scale ?pool:!pool
       ~seed:!seed ())

let per_dataset
    (f :
      ?utilities:int ->
      ?scale:float ->
      ?pool:Pool.t ->
      seed:int ->
      Experiments.dataset_kind ->
      Experiments.sweep) =
  List.iter
    (fun kind ->
      print_sweep
        (f ~utilities:!utilities ~scale:!scale ?pool:!pool ~seed:!seed kind))
    Experiments.[ Island_like; Nba_like; House_like ]

let run_fig2 () = section "fig2"; per_dataset Experiments.fig2
let run_fig3 () = section "fig3"; per_dataset Experiments.fig3
let run_fig4 () = section "fig4"; per_dataset Experiments.fig4
let run_fig5 () = section "fig5"; per_dataset Experiments.fig5

let dataset_labels = [ "Island"; "NBA"; "House" ]

let run_tab3 () =
  section "tab3";
  print_time_sweep ~labels:dataset_labels
    (Experiments.tab3 ~utilities:!utilities ~scale:!scale ?pool:!pool
       ~seed:!seed ())

let run_tab4 () =
  section "tab4";
  print_time_sweep ~labels:dataset_labels
    (Experiments.tab4 ~utilities:!utilities ~scale:!scale ?pool:!pool
       ~seed:!seed ())

let run_fig6 () =
  section "fig6";
  print_sweep
    (Experiments.fig6 ~utilities:!utilities ~max_n:!max_n ?pool:!pool
       ~seed:!seed ())

let run_fig7 () =
  section "fig7";
  let n = max 500 (int_of_float (!scale *. 10_000.)) in
  print_sweep
    (Experiments.fig7 ~utilities:!utilities ~n ?pool:!pool ~seed:!seed ())

(* --- Bechamel micro-benchmarks: one Test.make per running-time table ---

   Tables III and IV time whole algorithm executions; Bechamel needs
   sub-second units to sample, so each table gets a micro workload (an
   NBA-like subset) per algorithm.  Relative ordering is what these
   establish; the wall-clock tables above carry the paper-scale numbers. *)

let bechamel_micro_test ~name ~delta =
  let open Bechamel in
  let module Algo = Indq_core.Algo in
  let module Oracle = Indq_user.Oracle in
  let module Utility = Indq_user.Utility in
  let module Rng = Indq_util.Rng in
  let data =
    Indq_dataset.Realistic.nba ~n:1500 (Rng.create (!seed + 77))
  in
  let d = Indq_dataset.Dataset.dim data in
  let config = { (Algo.default_config ~d) with Algo.delta } in
  let tests =
    List.map
      (fun algo ->
        Test.make
          ~name:(Algo.to_string algo)
          (Staged.stage (fun () ->
               let rng = Rng.create !seed in
               let u = Utility.random rng ~d in
               let oracle =
                 if delta > 0. then
                   Oracle.with_error ~delta ~rng:(Rng.split rng) u
                 else Oracle.exact u
               in
               ignore (Algo.run algo config ~data ~oracle ~rng:(Rng.split rng)))))
      Algo.all
  in
  Test.make_grouped ~name tests

let run_bechamel () =
  section "bechamel micro-benchmarks (NBA-like, n=1500)";
  let open Bechamel in
  let benchmark test =
    let ols =
      Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
    in
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:30 ~quota:(Time.second 2.0) ~kde:None
        ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let print_results title results =
    let t =
      Indq_util.Tabulate.create ~title ~columns:[ "algorithm"; "ms/run" ]
    in
    let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
    List.iter
      (fun (name, ols) ->
        let ms =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t /. 1e6
          | _ -> Float.nan
        in
        Indq_util.Tabulate.add_row t [ name; Printf.sprintf "%.2f" ms ])
      (List.sort compare rows);
    Indq_util.Tabulate.print t
  in
  print_results "Table III micro (delta=0)"
    (benchmark (bechamel_micro_test ~name:"tab3" ~delta:0.));
  print_results "Table IV micro (delta=0.05)"
    (benchmark (bechamel_micro_test ~name:"tab4" ~delta:0.05))

(* --- Ablations: design choices called out in DESIGN.md --- *)

module Dataset = Indq_dataset.Dataset
module Generator = Indq_dataset.Generator
module Skyline = Indq_dominance.Skyline
module Algo = Indq_core.Algo
module Indist = Indq_core.Indist
module Oracle = Indq_user.Oracle
module Utility = Indq_user.Utility
module Nonlinear = Indq_user.Nonlinear
module Rng = Indq_util.Rng
module Tabulate = Indq_util.Tabulate
module Timer = Indq_util.Timer

(* Which c-skyline implementation should back Observation 3's filter? *)
let run_ablation_skyline () =
  section "ablation-skyline (c = 1.05)";
  let rng = Rng.create !seed in
  let cases =
    [
      ("island-like 2D", Indq_dataset.Realistic.island
         ~n:(max 500 (int_of_float (!scale *. 63383.))) rng);
      ("anti-corr 3D", Generator.anti_correlated rng
         ~n:(max 500 (int_of_float (!scale *. 50000.))) ~d:3);
      ("anti-corr 5D", Generator.anti_correlated rng
         ~n:(max 500 (int_of_float (!scale *. 10000.))) ~d:5);
    ]
  in
  let t =
    Tabulate.create ~title:"c-skyline implementations, seconds (result size)"
      ~columns:[ "dataset"; "SFS"; "sweep-2D"; "R-tree"; "BNL (n<=3000)" ]
  in
  List.iter
    (fun (label, data) ->
      let time f =
        let result, secs = Timer.time f in
        Printf.sprintf "%.3f (%d)" secs (Dataset.size result)
      in
      let c = 1.05 in
      let sfs = time (fun () -> Skyline.c_skyline_sfs ~c data) in
      let sweep =
        if Dataset.dim data = 2 then
          time (fun () -> Skyline.c_skyline_sweep_2d ~c data)
        else "n/a"
      in
      let rtree = time (fun () -> Skyline.c_skyline_rtree ~c data) in
      let bnl =
        if Dataset.size data <= 3000 then
          time (fun () -> Skyline.c_skyline_bnl ~c data)
        else "skipped"
      in
      Tabulate.add_row t [ label; sfs; sweep; rtree; bnl ])
    cases;
  Tabulate.print t

(* How many Lemma 2 anchor tuples are worth trying? *)
let run_ablation_anchors () =
  section "ablation-anchors (UH-Random on House-like)";
  let data = Experiments.load ~scale:(Float.min !scale 0.3) ~seed:!seed House_like in
  let d = Dataset.dim data in
  let t =
    Tabulate.create ~title:"Lemma 2 anchor-pool size"
      ~columns:[ "anchors"; "alpha(mean)"; "|output|(mean)"; "time(mean s)" ]
  in
  List.iter
    (fun anchors ->
      let trials = !utilities in
      let alphas = ref 0. and sizes = ref 0. and times = ref 0. in
      for trial = 0 to trials - 1 do
        let rng = Rng.create ((trial * 7919) + anchors) in
        let u = Utility.random rng ~d in
        let oracle = Oracle.exact u in
        let (result : Indq_core.Real_points.result), secs =
          Timer.time (fun () ->
              Indq_core.Real_points.run ~anchors Indq_core.Real_points.Random
                ~data ~s:d ~q:(3 * d) ~eps:0.05 ~oracle ~rng:(Rng.split rng))
        in
        alphas :=
          !alphas
          +. Indist.alpha ~eps:0.05 u ~data ~output:result.Indq_core.Real_points.output;
        sizes := !sizes +. float_of_int (Dataset.size result.Indq_core.Real_points.output);
        times := !times +. secs
      done;
      let k = float_of_int trials in
      Tabulate.add_row t
        [
          string_of_int anchors;
          Printf.sprintf "%.4f" (!alphas /. k);
          Printf.sprintf "%.1f" (!sizes /. k);
          Printf.sprintf "%.2f" (!times /. k);
        ])
    [ 1; 2; 4; 8 ];
  Tabulate.print t

(* Squeeze-u's final filter: O(n) heuristic vs exact corner test. *)
let run_ablation_prune () =
  section "ablation-prune (Squeeze-u final filter)";
  let rng = Rng.create !seed in
  let data =
    Generator.anti_correlated rng ~n:(max 500 (int_of_float (!scale *. 20000.))) ~d:4
  in
  let d = Dataset.dim data in
  let t =
    Tabulate.create ~title:"fast heuristic vs exact box-corner filter"
      ~columns:[ "filter"; "alpha(mean)"; "|output|(mean)"; "time(mean s)"; "false-neg" ]
  in
  List.iter
    (fun (label, exact_prune) ->
      let trials = !utilities in
      let alphas = ref 0. and sizes = ref 0. and times = ref 0. in
      let fn = ref 0 in
      for trial = 0 to trials - 1 do
        let trial_rng = Rng.create ((trial * 6011) + 3) in
        let u = Utility.random trial_rng ~d in
        let oracle = Oracle.exact u in
        let config = { (Algo.default_config ~d) with Algo.exact_prune } in
        let result = Algo.run Algo.Squeeze_u config ~data ~oracle ~rng:trial_rng in
        alphas := !alphas +. Indist.alpha ~eps:0.05 u ~data ~output:result.Algo.output;
        sizes := !sizes +. float_of_int (Dataset.size result.Algo.output);
        times := !times +. result.Algo.seconds;
        if Indist.has_false_negatives ~eps:0.05 u ~data ~output:result.Algo.output
        then incr fn
      done;
      let k = float_of_int trials in
      Tabulate.add_row t
        [
          label;
          Printf.sprintf "%.4f" (!alphas /. k);
          Printf.sprintf "%.1f" (!sizes /. k);
          Printf.sprintf "%.3f" (!times /. k);
          string_of_int !fn;
        ])
    [ ("fast (paper IV-A)", false); ("exact corners", true) ];
  Tabulate.print t

(* Open question 3: how do the linear-assuming algorithms fare when the
   user's real utility is concave?  alpha is measured under the true
   non-linear utility. *)
let run_ablation_nonlinear () =
  section "ablation-nonlinear (concave-power users vs linear algorithms)";
  let rng = Rng.create !seed in
  let data =
    Generator.independent rng ~n:(max 500 (int_of_float (!scale *. 10000.))) ~d:3
  in
  let d = Dataset.dim data in
  let t =
    Tabulate.create
      ~title:"Squeeze-u under f(x) = sum w_i x_i^e  (e = 1 is the linear case)"
      ~columns:[ "exponent e"; "alpha(mean)"; "false-neg runs"; "|output|(mean)"; "|I|(mean)" ]
  in
  List.iter
    (fun exponent ->
      let trials = !utilities in
      let alphas = ref 0. and sizes = ref 0. and truth_sizes = ref 0. in
      let fn = ref 0 in
      for trial = 0 to trials - 1 do
        let trial_rng = Rng.create ((trial * 104729) + 17) in
        let user = Nonlinear.random_concave trial_rng ~d ~exponent in
        let f = Nonlinear.value user in
        let oracle = Nonlinear.oracle user in
        let config = Algo.default_config ~d in
        let result =
          Algo.run Algo.Squeeze_u config ~data ~oracle ~rng:(Rng.split trial_rng)
        in
        alphas := !alphas +. Indist.alpha_fn ~eps:0.05 f ~data ~output:result.Algo.output;
        sizes := !sizes +. float_of_int (Dataset.size result.Algo.output);
        truth_sizes :=
          !truth_sizes
          +. float_of_int (Dataset.size (Indist.query_exact_fn ~eps:0.05 f data));
        if Indist.has_false_negatives_fn ~eps:0.05 f ~data ~output:result.Algo.output
        then incr fn
      done;
      let k = float_of_int trials in
      Tabulate.add_row t
        [
          Printf.sprintf "%.1f" exponent;
          Printf.sprintf "%.4f" (!alphas /. k);
          string_of_int !fn;
          Printf.sprintf "%.1f" (!sizes /. k);
          Printf.sprintf "%.1f" (!truth_sizes /. k);
        ])
    [ 1.0; 0.8; 0.6; 0.4 ];
  Tabulate.print t;
  print_endline
    "e = 1 must show alpha ~ 0 and no false negatives; smaller e (more concave)";
  print_endline
    "degrades both -- quantifying the cost of the paper's linearity assumption.\n"

(* --- Fault-injection matrix (-faults): arm one site at a time with the
   trigger the seeded plan assigns it, drive a workload that reaches the
   site, and report whether the stack recovered or surfaced its typed
   error.  Entirely deterministic in -seed: same plan, same injections,
   same outcomes. *)

module Fault = Indq_fault.Fault
module Counter = Indq_obs.Counter
module Lp = Indq_lp.Lp
module Vec = Indq_linalg.Vec

let trigger_to_string = function
  | Fault.Never -> "never"
  | Fault.Once k -> Printf.sprintf "once@reach %d" k
  | Fault.Every k -> Printf.sprintf "every %d" k
  | Fault.After k -> Printf.sprintf "after %d" k
  | Fault.Always -> "always"

(* Enough reaches to cover any [Once k] the seeded plan can pick (k <= 4). *)
let fault_reaches = 8

let drive_dataset_load () =
  let csv = "0,1,0.5\n1,0.25,1\n2,0.75,0.125\n" in
  let errors = ref 0 and ok = ref 0 in
  for _ = 1 to fault_reaches do
    match Dataset.of_csv csv with
    | _ -> incr ok
    | exception Dataset.Load_error _ -> incr errors
  done;
  Printf.sprintf "typed Load_error x%d, %d clean loads" !errors !ok

(* A small non-degenerate LP; the armed site decides whether a given solve
   runs clean, recovers via the Bland fallback, or fails typed. *)
let drive_lp site =
  let constraints =
    [
      { Lp.coeffs = Vec.of_array [| 1.; 2. |]; relation = Lp.Le; rhs = 4. };
      { Lp.coeffs = Vec.of_array [| 3.; 1. |]; relation = Lp.Le; rhs = 6. };
    ]
  in
  let optimal = ref 0 and failed = ref 0 and retried = ref 0 in
  for _ = 1 to fault_reaches do
    let before = Counter.get "retry.attempts" in
    (match
       Lp.solve ~n:2 ~objective:(Vec.of_array [| 1.; 1. |]) `Maximize constraints
     with
    | Lp.Optimal _ -> incr optimal
    | Lp.Failed _ -> incr failed
    | Lp.Infeasible | Lp.Unbounded -> assert false);
    if Counter.get "retry.attempts" > before then incr retried
  done;
  match site with
  | `Cap ->
    Printf.sprintf "Bland fallback recovered x%d, %d optimal, %d failed"
      !retried !optimal !failed
  | `Nan ->
    Printf.sprintf "typed Failed (Numerical) x%d, %d optimal" !failed !optimal

(* A whole interactive run with a lying simulated user: the run must finish
   and degrade (collapse detection / widened restart), never crash. *)
let drive_oracle_contradiction () =
  let rng = Rng.create !seed in
  let data = Generator.anti_correlated rng ~n:400 ~d:3 in
  let d = Dataset.dim data in
  let config = Algo.default_config ~d in
  let outcomes =
    List.map
      (fun algo ->
        let u = Utility.random rng ~d in
        let oracle = Oracle.exact u in
        let result = Algo.run algo config ~data ~oracle ~rng:(Rng.split rng) in
        Printf.sprintf "%s |out|=%d" (Algo.to_string algo)
          (Dataset.size result.Algo.output))
      [ Algo.Uh_random; Algo.Squeeze_u ]
  in
  let collapses = Counter.get "region.collapses" in
  let widened = Counter.get "squeeze_u2.widened_restarts" in
  Printf.sprintf "completed (%s); collapses=%g widened=%g"
    (String.concat ", " outcomes) collapses widened

(* Chunks are retried on simulated worker death; output must stay
   bit-identical to the fault-free map. *)
let drive_worker_death () =
  let arr = Array.init 64 (fun i -> i) in
  let f i = (i * i) + 1 in
  let expected = Array.map f arr in
  Pool.with_pool ~domains:2 (fun p ->
      match Pool.parallel_map ~chunks:8 p f arr with
      | out ->
        if out = expected then "recovered: output bit-identical"
        else "RECOVERY MISMATCH"
      | exception Fault.Injected _ ->
        "retries exhausted: typed Fault.Injected")

let bench_temp_dir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  base

let serve_hello id =
  {
    Wire.id;
    algo = Algo.Squeeze_u;
    data = "independent";
    n = 30;
    d = 2;
    seed = 5;
    s = 0;
    q = 0;
    eps = 0.;
    delta = 0.;
  }

(* Every fsync failure is absorbed by the durable sink: appends keep
   succeeding, the records all land on disk, and only the
   serve.sync_failures counter betrays the injection. *)
let drive_journal_sync () =
  let dir = bench_temp_dir "indq-bench-sync" in
  let before = Counter.get "serve.sync_failures" in
  let sink =
    Journal_store.create ~dir ~fsync:Journal_store.Always (serve_hello "sync")
  in
  let entries =
    List.init (fault_reaches - 1) (fun i ->
        Indq_core.Session.Answered { round = i + 1; options = 2; choice = 0 })
  in
  List.iter (Journal_store.append sink) entries;
  Journal_store.close sink;
  let failures = Counter.get "serve.sync_failures" -. before in
  match Journal_store.load ~dir "sync" with
  | Ok l
    when l.Journal_store.entries = entries && not l.Journal_store.torn_tail ->
    Printf.sprintf "absorbed %g fsync failure(s), all %d records durable"
      failures (List.length entries)
  | Ok _ -> "RECORDS MISMATCH AFTER SYNC FAILURE"
  | Error _ -> "JOURNAL FAILED TO LOAD"

(* A torn append poisons the sink; recovery reloads (dropping the torn
   tail), reopens with a rewrite, and re-appends the failed record.  The
   final journal must hold every record exactly once. *)
let drive_journal_torn_write () =
  let dir = bench_temp_dir "indq-bench-torn" in
  let torn = ref 0 in
  (* A tear can land on the header write itself; creation is atomic, so
     recovery there is delete-and-retry. *)
  let rec fresh () =
    match
      Journal_store.create ~dir ~fsync:Journal_store.Never (serve_hello "torn")
    with
    | sink -> sink
    | exception Journal_store.Torn _ ->
      incr torn;
      Sys.remove (Journal_store.path ~dir "torn");
      fresh ()
  in
  let sink = ref (fresh ()) in
  let entries =
    List.init fault_reaches (fun i ->
        Indq_core.Session.Answered { round = i + 1; options = 2; choice = 10 + i })
  in
  List.iter
    (fun e ->
      match Journal_store.append !sink e with
      | () -> ()
      | exception Journal_store.Torn _ -> (
        incr torn;
        Journal_store.close !sink;
        match Journal_store.load ~dir "torn" with
        | Ok loaded ->
          sink :=
            Journal_store.reopen ~dir ~fsync:Journal_store.Never
              ~rewrite:loaded.Journal_store.torn_tail loaded "torn";
          Journal_store.append !sink e
        | Error _ -> ()))
    entries;
  Journal_store.close !sink;
  match Journal_store.load ~dir "torn" with
  | Ok l
    when l.Journal_store.entries = entries && not l.Journal_store.torn_tail ->
    Printf.sprintf "tear recovered x%d, journal intact (%d records)" !torn
      (List.length entries)
  | Ok _ | Error _ -> "JOURNAL DAMAGED AFTER TORN WRITE"

(* The engine swallows exactly one reply; session state stays intact, so
   the following request sees the same pending round. *)
let drive_client_disconnect () =
  let dir = bench_temp_dir "indq-bench-disc" in
  let engine =
    Engine.create
      { (Engine.default_config ~dir) with Engine.fsync = Journal_store.Never }
  in
  let outcomes =
    List.init fault_reaches (fun i ->
        Engine.handle engine
          (if i = 0 then Wire.Hello (serve_hello "c")
           else Wire.Ask { id = "c" }))
  in
  Engine.shutdown engine;
  let count p = List.length (List.filter p outcomes) in
  let dropped =
    count (function Engine.Disconnect -> true | _ -> false)
  in
  let clean =
    count (function
      | Engine.Reply (Wire.R_ask _ | Wire.R_done _) -> true
      | _ -> false)
  in
  Printf.sprintf "reply dropped x%d, %d clean replies, session intact" dropped
    clean

let run_faults () =
  section (Printf.sprintf "fault matrix (plan seed=%d)" !seed);
  let plan = Fault.random_plan ~seed:!seed in
  let t =
    Tabulate.create ~title:"one armed site per row, all others quiet"
      ~columns:[ "site"; "trigger"; "injected"; "outcome" ]
  in
  List.iter
    (fun site ->
      let trigger = List.assoc site plan.Fault.arms in
      let site_plan = Fault.plan ~seed:!seed [ (site, trigger) ] in
      let before = Counter.snapshot () in
      let outcome =
        Fault.with_plan site_plan (fun () ->
            match site with
            | "inject.dataset_load" -> drive_dataset_load ()
            | "inject.lp_iteration_cap" -> drive_lp `Cap
            | "inject.lp_nan_pivot" -> drive_lp `Nan
            | "inject.oracle_contradiction" -> drive_oracle_contradiction ()
            | "inject.worker_death" -> drive_worker_death ()
            | "inject.journal_sync" -> drive_journal_sync ()
            | "inject.journal_torn_write" -> drive_journal_torn_write ()
            | "inject.client_disconnect" -> drive_client_disconnect ()
            | _ -> "no driver for this site")
      in
      let delta = Counter.since before in
      let injected =
        match List.assoc_opt "fault.injected" delta with
        | Some v -> v
        | None -> 0.
      in
      Tabulate.add_row t
        [ site; trigger_to_string trigger; Printf.sprintf "%g" injected;
          outcome ])
    Fault.site_names;
  Tabulate.print t

(* --- LP micro-benchmark (-lp): flat-kernel throughput and the dual-simplex
   vs two-phase latency split.  The pivot-count distributions and the
   agreement audit are deterministic in -seed; every wall-clock figure is
   gated behind -no-times like the rest of the harness. *)

module Mat = Indq_linalg.Mat
module Histogram = Indq_obs.Histogram
module Polytope = Indq_geom.Polytope
module Halfspace = Indq_geom.Halfspace

let h_lp_dual = Histogram.make ~unit_:Seconds "bench.lp_dual_seconds"

let h_lp_two_phase = Histogram.make ~unit_:Seconds "bench.lp_two_phase_seconds"

let run_lp_micro () =
  section (Printf.sprintf "lp micro-benchmark (seed=%d)" !seed);
  let ms v = Printf.sprintf "%.4f" (v *. 1e3) in
  let gated v = if !with_times then v else "-" in
  (* Kernel throughput: ns per operation over the flat Bigarray buffers.
     Each loop body is one kernel call; the checksum keeps the work live. *)
  let kernels =
    Tabulate.create ~title:"kernel throughput (ns/op)"
      ~columns:[ "n"; "dot"; "axpy_ip"; "pivot row" ]
  in
  List.iter
    (fun n ->
      let rng = Rng.create !seed in
      let a = Vec.init n (fun _ -> Rng.uniform rng) in
      let b = Vec.init n (fun _ -> Rng.uniform rng) in
      let iters = max 1_000 (2_000_000 / n) in
      let checksum = ref 0. in
      let ns_per f ops =
        let _, secs = Timer.time f in
        Printf.sprintf "%.1f" (secs /. float_of_int ops *. 1e9)
      in
      let dot =
        ns_per
          (fun () ->
            for _ = 1 to iters do
              checksum := !checksum +. Vec.dot a b
            done)
          iters
      in
      let axpy =
        let y = Vec.copy b in
        ns_per
          (fun () ->
            for _ = 1 to iters do
              Vec.axpy_ip 1e-9 a y
            done)
          iters
      in
      let pivot =
        (* One simplex pivot: normalize the pivot row, eliminate it from
           every other row — the Live.add_cut / optimize inner loop. *)
        let rows = 32 in
        let m =
          Mat.of_rows
            (Array.init rows (fun _ -> Vec.init n (fun _ -> Rng.uniform rng)))
        in
        let sweeps = max 1 (iters / rows) in
        ns_per
          (fun () ->
            for _ = 1 to sweeps do
              Mat.scale_row m 0 1.0000001;
              for r = 1 to rows - 1 do
                Mat.add_scaled_row m ~src:0 ~dst:r 1e-9
              done
            done)
          (sweeps * rows)
      in
      ignore !checksum;
      Tabulate.add_row kernels
        [ string_of_int n; gated dot; gated axpy; gated pivot ])
    [ 16; 128; 1024 ];
  Tabulate.print kernels;
  (* Dual vs two-phase: random shrinking-region families.  The dual path is
     the audited polytope wrapper (fork the frozen tableau, re-optimize);
     the two-phase path solves the same constraint list from scratch. *)
  let rng = Rng.create !seed in
  let families = 60 in
  let agreements = ref 0 and queries = ref 0 and max_gap = ref 0. in
  let before_counters = Counter.snapshot () in
  let before_hists = Histogram.snapshot () in
  for _ = 1 to families do
    let d = 3 + Rng.int rng 3 in
    let r = ref (Polytope.simplex d) in
    let cuts = 4 + Rng.int rng 5 in
    for _ = 1 to cuts do
      let normal = Vec.init d (fun _ -> Rng.float rng 2. -. 1.) in
      r := Polytope.cut !r (Halfspace.ge normal (Rng.float rng 0.4 -. 0.2));
      let objective = Vec.init d (fun _ -> Rng.float rng 1.) in
      let dual, dual_secs =
        Timer.time (fun () ->
            if Polytope.is_empty !r then None else Polytope.maximize !r objective)
      in
      Histogram.observe h_lp_dual dual_secs;
      let cold, cold_secs =
        Timer.time (fun () ->
            Lp.solve ~n:d ~objective `Maximize (Polytope.to_lp_constraints !r))
      in
      Histogram.observe h_lp_two_phase cold_secs;
      incr queries;
      match (dual, cold) with
      | None, Lp.Infeasible -> incr agreements
      | Some (v, _), Lp.Optimal s ->
        max_gap := Float.max !max_gap (Float.abs (v -. s.Lp.objective));
        if Float.abs (v -. s.Lp.objective) <= 1e-6 then incr agreements
      | _ -> ()
    done
  done;
  let hist_delta = Histogram.since before_hists in
  let counter_delta = Counter.since before_counters in
  let counter name =
    match List.assoc_opt name counter_delta with Some v -> v | None -> 0.
  in
  let latency =
    Tabulate.create ~title:"value-query latency (ms)"
      ~columns:[ "path"; "queries"; "mean"; "p50"; "p90"; "p99" ]
  in
  let latency_row label h =
    let s =
      match List.assoc_opt (Histogram.name h) hist_delta with
      | Some s -> s
      | None -> Histogram.empty (Histogram.kind h)
    in
    Tabulate.add_row latency
      [ label; string_of_int s.Histogram.count;
        gated (ms (Histogram.mean s)); gated (ms (Histogram.p50 s));
        gated (ms (Histogram.p90 s)); gated (ms (Histogram.p99 s)) ]
  in
  latency_row "dual (polytope fork)" h_lp_dual;
  latency_row "two-phase (cold)" h_lp_two_phase;
  Tabulate.print latency;
  let pivots =
    Tabulate.create ~title:"pivot work (deterministic)"
      ~columns:[ "histogram"; "solves"; "pivots"; "p50"; "p90"; "p99" ]
  in
  let pivots_row name =
    let s =
      match List.assoc_opt name hist_delta with
      | Some s -> s
      | None -> Histogram.empty Histogram.Count
    in
    Tabulate.add_row pivots
      [ name; string_of_int s.Histogram.count;
        Printf.sprintf "%g" s.Histogram.sum;
        Printf.sprintf "%g" (Histogram.p50 s);
        Printf.sprintf "%g" (Histogram.p90 s);
        Printf.sprintf "%g" (Histogram.p99 s) ]
  in
  pivots_row "lp.pivots_per_reopt";
  pivots_row "lp.pivots_per_solve";
  Tabulate.print pivots;
  Printf.printf
    "counters: lp.dual_reopt=%g lp.dual_pivots=%g lp.solves=%g lp.iterations=%g\n"
    (counter "lp.dual_reopt") (counter "lp.dual_pivots") (counter "lp.solves")
    (counter "lp.iterations");
  Printf.printf "agreement: %d/%d dual vs two-phase (max |delta| = %.3g)\n\n"
    !agreements !queries !max_gap

(* --- Serve bench (-serve): the crash-tolerant session server under load.

   Phase A drives real clients over a Unix-domain socket against a server
   running in its own domain; counters are domain-local, so every figure
   comes back over the wire through the [stats] op.  Phase B replays one
   interleaved schedule through two engines — one starved to
   [max_hydrated = 3], one uncapped — and byte-compares the final encoded
   [done] lines: eviction plus rehydration must be invisible in the
   results, while [serve.evictions] proves the round trips happened. *)

let serve_json = ref ""

let run_serve () =
  section "serve";
  let gated v = if !with_times then v else "-" in
  let ms v = Printf.sprintf "%.3f" (v *. 1e3) in
  (* Phase A: socket load generation. *)
  let sessions = if !quick then 30 else 150 in
  let root = bench_temp_dir "indq-serve" in
  let sock = Filename.concat root "indq.sock" in
  let config =
    {
      (Engine.default_config ~dir:(Filename.concat root "journals")) with
      Engine.allow_shutdown = true;
    }
  in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Server.run
          ~on_ready:(fun () -> Atomic.set ready true)
          config (Server.Unix_path sock))
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.005
  done;
  let client = Sclient.connect (Server.Unix_path sock) in
  let load_hello i =
    {
      Wire.id = Printf.sprintf "load-%04d" i;
      algo = Algo.Squeeze_u;
      data = "independent";
      n = 400;
      d = 3;
      seed = !seed + i;
      s = 0;
      q = 0;
      eps = 0.;
      delta = 0.;
    }
  in
  let total_rounds = ref 0 in
  let drive i =
    let rec loop = function
      | Wire.R_ask { id; round; options } ->
        incr total_rounds;
        let choice = (round + i) mod Array.length options in
        loop (Sclient.rpc client (Wire.Answer { id; round; choice }))
      | Wire.R_done _ -> ()
      | other ->
        failwith ("serve bench: unexpected reply " ^ Wire.response_to_line other)
    in
    loop (Sclient.rpc client (Wire.Hello (load_hello i)))
  in
  let (), secs =
    Timer.time (fun () ->
        for i = 0 to sessions - 1 do
          drive i
        done)
  in
  let counters, lat =
    match Sclient.rpc client Wire.Stats with
    | Wire.R_stats { counters; round_latency } -> (counters, round_latency)
    | other ->
      failwith ("serve bench: unexpected stats reply " ^ Wire.response_to_line other)
  in
  (match Sclient.rpc client Wire.Shutdown with
  | Wire.R_ok _ -> ()
  | other ->
    failwith ("serve bench: shutdown refused: " ^ Wire.response_to_line other));
  Sclient.close client;
  Domain.join server;
  let counter name =
    match List.assoc_opt name counters with Some v -> v | None -> 0.
  in
  let a = Tabulate.create ~title:"phase A: socket load" ~columns:[ "metric"; "value" ] in
  Tabulate.add_row a [ "sessions"; string_of_int sessions ];
  Tabulate.add_row a [ "rounds answered"; string_of_int !total_rounds ];
  Tabulate.add_row a [ "serve.sessions"; Printf.sprintf "%g" (counter "serve.sessions") ];
  Tabulate.add_row a [ "serve.requests"; Printf.sprintf "%g" (counter "serve.requests") ];
  Tabulate.add_row a [ "serve.journal_syncs"; Printf.sprintf "%g" (counter "serve.journal_syncs") ];
  Tabulate.add_row a [ "serve.wire_errors"; Printf.sprintf "%g" (counter "serve.wire_errors") ];
  Tabulate.add_row a [ "wall seconds"; gated (Printf.sprintf "%.2f" secs) ];
  Tabulate.add_row a
    [ "sessions/sec"; gated (Printf.sprintf "%.1f" (float_of_int sessions /. secs)) ];
  Tabulate.add_row a
    [ Printf.sprintf "serve.round_latency ms (n=%d)" lat.Wire.p_count;
      gated
        (Printf.sprintf "p50=%s p90=%s p99=%s" (ms lat.Wire.p50)
           (ms lat.Wire.p90) (ms lat.Wire.p99)) ];
  Tabulate.print a;
  (* Phase B: eviction transparency on one interleaved schedule. *)
  let clients_b = 12 in
  let evict_hello i =
    {
      Wire.id = Printf.sprintf "evict-%02d" i;
      algo = Algo.Squeeze_u;
      data = "anti_correlated";
      n = 300;
      d = 2;
      seed = !seed + (7 * i);
      s = 0;
      q = 0;
      eps = 0.;
      delta = 0.;
    }
  in
  let run_schedule ~max_hydrated =
    let dir = bench_temp_dir "indq-evict" in
    let engine =
      Engine.create
        {
          (Engine.default_config ~dir) with
          Engine.max_hydrated;
          fsync = Journal_store.Never;
        }
    in
    let before = Counter.snapshot () in
    let finals = Array.make clients_b "" in
    let reply i = function
      | Engine.Reply (Wire.R_done _ as r) ->
        finals.(i) <- Wire.response_to_line r
      | Engine.Reply (Wire.R_ask _) -> ()
      | _ -> failwith "serve bench: unexpected engine outcome"
    in
    for i = 0 to clients_b - 1 do
      reply i (Engine.handle engine (Wire.Hello (evict_hello i)))
    done;
    (* Round-robin, one answer per session per pass: with the starved
       capacity every pass churns the LRU through all twelve sessions. *)
    let progress = ref true in
    while !progress do
      progress := false;
      for i = 0 to clients_b - 1 do
        if finals.(i) = "" then begin
          progress := true;
          let id = (evict_hello i).Wire.id in
          match Engine.handle engine (Wire.Ask { id }) with
          | Engine.Reply (Wire.R_done _ as r) ->
            finals.(i) <- Wire.response_to_line r
          | Engine.Reply (Wire.R_ask { id; round; options }) ->
            let choice = (round + i) mod Array.length options in
            reply i (Engine.handle engine (Wire.Answer { id; round; choice }))
          | _ -> failwith "serve bench: unexpected engine outcome"
        end
      done
    done;
    let delta = Counter.since before in
    Engine.shutdown engine;
    let v name =
      match List.assoc_opt name delta with Some x -> x | None -> 0.
    in
    (Array.to_list finals, v "serve.evictions", v "serve.hydrations")
  in
  let starved, ev_starved, hy_starved = run_schedule ~max_hydrated:3 in
  let uncapped, ev_uncapped, _ = run_schedule ~max_hydrated:1024 in
  let identical = starved = uncapped in
  let b =
    Tabulate.create ~title:"phase B: eviction transparency (12 sessions)"
      ~columns:[ "engine"; "evictions"; "hydrations"; "final done lines" ]
  in
  Tabulate.add_row b
    [ "max_hydrated=3"; Printf.sprintf "%g" ev_starved;
      Printf.sprintf "%g" hy_starved;
      (if identical then "byte-identical" else "BYTE MISMATCH") ];
  Tabulate.add_row b
    [ "max_hydrated=1024"; Printf.sprintf "%g" ev_uncapped; "-"; "reference" ];
  Tabulate.print b;
  if not identical then
    print_endline "EVICTION TRANSPARENCY VIOLATED: results differ\n";
  if ev_starved <= 0. then
    print_endline "EVICTION CHECK INCONCLUSIVE: starved engine never evicted\n";
  serve_json :=
    Printf.sprintf
      "{\"sessions\":%d,\"rounds\":%d,\"seconds\":%.6f,\"sessions_per_sec\":%.2f,\"round_latency_ms\":{\"count\":%d,\"p50\":%.4f,\"p90\":%.4f,\"p99\":%.4f},\"eviction_transparency\":{\"identical\":%b,\"starved_evictions\":%g,\"starved_hydrations\":%g}}"
      sessions !total_rounds secs
      (float_of_int sessions /. secs)
      lat.Wire.p_count
      (lat.Wire.p50 *. 1e3) (lat.Wire.p90 *. 1e3) (lat.Wire.p99 *. 1e3)
      identical ev_starved hy_starved

(* --- Scale bench: the full columnar path at paper-exceeding sizes ---

   Generates an anti-correlated 3-D dataset of [scale * 100_000] rows (so
   -scale 100 is n = 10^7), builds the packed STR-tree straight off the
   store buffer, runs the Observation 3 filter (artifact-cached when
   -cache names a directory), then drives one MinR session over the
   pruned rows through [Session] so [session.round_latency] measures real
   per-round interaction latency.  Deliberately looked up outside
   [all_experiments]: its runtime is set by -scale, and with -cache its
   artifact counters depend on what previous runs left on disk, so it
   must never ride along with the deterministic default suite. *)

module Strtree = Indq_rtree.Strtree
module Store = Indq_dataset.Store
module Session = Indq_core.Session
module Artifact = Indq_dominance.Artifact

let run_scale () =
  let n = max 500 (int_of_float (!scale *. 100_000.)) in
  section (Printf.sprintf "scale (anti-correlated d=3, n=%d)" n);
  let gated v = if !with_times then v else "-" in
  let secs v = gated (Printf.sprintf "%.2f" v) in
  let ms v = gated (Printf.sprintf "%.2f" (v *. 1e3)) in
  let rng = Rng.create !seed in
  let data, gen_secs =
    Timer.time (fun () -> Generator.anti_correlated rng ~n ~d:3)
  in
  let before_counters = Counter.snapshot () in
  let before_hists = Histogram.snapshot () in
  let tree, build_secs =
    Timer.time (fun () ->
        Strtree.build ~dim:3 (Store.data (Dataset.store data)) n)
  in
  let eps = 0.05 in
  let pruned, prune_secs =
    Timer.time (fun () ->
        if !cache_dir = "" then Skyline.prune_eps_dominated ~eps data
        else Artifact.prune_eps_dominated_cached ~dir:!cache_dir ~eps data)
  in
  let d = Dataset.dim pruned in
  let u = Utility.random rng ~d in
  let config = Algo.default_config ~d in
  let session =
    Session.start Algo.MinR config ~data:pruned ~rng:(Rng.split rng)
  in
  let result, drive_secs =
    Timer.time (fun () ->
        let rec loop () =
          match Session.current session with
          | Session.Asking options ->
            let minor0 = Gc.minor_words () in
            let sweep0 = Counter.get "prune.sweep_minor_words" in
            Session.answer session (Utility.best_index u options);
            let minor1 = Gc.minor_words () in
            let sweep1 = Counter.get "prune.sweep_minor_words" in
            scale_probe := (minor1 -. minor0, sweep1 -. sweep0) :: !scale_probe;
            loop ()
          | Session.Finished result -> result
        in
        loop ())
  in
  let counters = Counter.since before_counters in
  let hists = Histogram.since before_hists in
  let counter name =
    match List.assoc_opt name counters with Some v -> v | None -> 0.
  in
  let t =
    Tabulate.create ~title:"columnar path, end to end"
      ~columns:[ "stage"; "output"; "seconds" ]
  in
  Tabulate.add_row t
    [ "generate";
      Printf.sprintf "%d rows, fingerprint %s" n (Dataset.fingerprint data);
      secs gen_secs ];
  Tabulate.add_row t
    [ "strtree build";
      Printf.sprintf "depth %d, %d leaves, %g nodes" (Strtree.depth tree)
        (Strtree.leaf_count tree)
        (counter "rtree.bulk_nodes");
      secs build_secs ];
  Tabulate.add_row t
    [ Printf.sprintf "prune eps=%g%s" eps
        (if !cache_dir = "" then "" else " (cached)");
      Printf.sprintf "%d rows (hits %g misses %g writes %g)"
        (Dataset.size pruned)
        (counter "skyline.artifact_hits")
        (counter "skyline.artifact_misses")
        (counter "skyline.artifact_writes");
      secs prune_secs ];
  Tabulate.add_row t
    [ "MinR session";
      Printf.sprintf "%d questions, |output|=%d"
        (Session.questions_asked session)
        (Dataset.size result.Algo.output);
      secs drive_secs ];
  Tabulate.print t;
  let rl =
    match List.assoc_opt "session.round_latency" hists with
    | Some s -> s
    | None -> Histogram.empty Histogram.Seconds
  in
  Printf.printf
    "session.round_latency (ms): rounds=%d p50=%s p90=%s p99=%s\n\n%!"
    rl.Histogram.count
    (ms (Histogram.p50 rl))
    (ms (Histogram.p90 rl))
    (ms (Histogram.p99 rl));
  let rounds = List.rev !scale_probe in
  let sweep_total = List.fold_left (fun a (_, s) -> a +. s) 0. rounds in
  Printf.printf
    "allocation probe: rounds=%d sweep_minor_words(total)=%g%s\n\n%!"
    (List.length rounds) sweep_total
    (if Float.equal sweep_total 0. then " (alloc-free claim holds)"
     else " (ALLOC-FREE CLAIM VIOLATED)");
  if !metrics then begin
    let mt =
      Tabulate.create ~title:"work histograms (this run)"
        ~columns:[ "histogram"; "count"; "sum" ]
    in
    List.iter
      (fun (hname, s) ->
        let sum =
          match s.Histogram.s_unit with
          | Histogram.Seconds -> gated (Printf.sprintf "%.2fs" s.Histogram.sum)
          | Histogram.Count -> Printf.sprintf "%g" s.Histogram.sum
        in
        Tabulate.add_row mt
          [ hname; string_of_int s.Histogram.count; sum ])
      hists;
    Tabulate.print mt;
    let ct =
      Tabulate.create ~title:"work counters (this run)"
        ~columns:[ "counter"; "delta" ]
    in
    List.iter
      (fun (cname, v) ->
        Tabulate.add_row ct [ cname; Printf.sprintf "%g" v ])
      counters;
    Tabulate.print ct
  end

let all_experiments =
  [
    ("fig1", run_fig1);
    ("fig2", run_fig2);
    ("fig3", run_fig3);
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("tab3", run_tab3);
    ("tab4", run_tab4);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("bechamel", run_bechamel);
    ("ablation-skyline", run_ablation_skyline);
    ("ablation-anchors", run_ablation_anchors);
    ("ablation-prune", run_ablation_prune);
    ("ablation-nonlinear", run_ablation_nonlinear);
  ]

(* Runnable by name only — never part of the default "all" run (see the
   determinism note above [run_scale]). *)
let extra_experiments = [ ("scale", run_scale) ]

let () =
  Arg.parse spec (fun name -> selected := name :: !selected) usage;
  if !quick then begin
    scale := 0.05;
    utilities := 3;
    max_n := 10_000
  end;
  if !jobs < 1 then begin
    Printf.eprintf "-j must be >= 1 (got %d)\n" !jobs;
    exit 2
  end;
  let chosen =
    match List.rev !selected with
    | [] when !faults || !lp_micro || !serve_bench -> []
    | [] | [ "all" ] -> List.map fst all_experiments
    | names -> names
  in
  if !cold then Indq_geom.Polytope.set_incremental false;
  (* The header deliberately omits -j and -cold: output must be identical
     across -j values and across incremental/cold (the CI smoke jobs diff
     those pairs under -no-times). *)
  Printf.printf
    "indistinguishability-query benchmarks (seed=%d scale=%g utilities=%d max-n=%d)\n\n%!"
    !seed !scale !utilities !max_n;
  if !faults then run_faults ();
  if !lp_micro then run_lp_micro ();
  if !serve_bench then run_serve ();
  Pool.with_pool ~domains:!jobs (fun p ->
      if Pool.size p > 1 then pool := Some p;
      let total_start = Timer.cpu () in
      List.iter
        (fun name ->
          match
            List.assoc_opt name (all_experiments @ extra_experiments)
          with
          | Some f ->
            current_experiment := name;
            let start = Timer.cpu () in
            f ();
            if !with_times then
              Printf.printf "[%s completed in %.1fs]\n\n%!" name
                (Timer.cpu () -. start)
          | None ->
            Printf.eprintf "unknown experiment %S; available: %s\n" name
              (String.concat ", "
                 (List.map fst (all_experiments @ extra_experiments)));
            exit 2)
        chosen;
      if !with_times then
        Printf.printf "total: %.1fs\n" (Timer.cpu () -. total_start));
  if !json_file <> "" then begin
    let oc = open_out !json_file in
    Printf.fprintf oc
      "{\"seed\":%d,\"scale\":%g,\"utilities\":%d,\"max_n\":%d,\"sweeps\":[\n"
      !seed !scale !utilities !max_n;
    List.rev !recorded_sweeps
    |> List.iteri (fun i (name, sweep) ->
           Printf.fprintf oc "%s{\"experiment\":\"%s\",\"sweep\":%s}" (if i = 0 then "" else ",\n") name
             (Report.sweep_to_json ~with_times:!with_times sweep));
    output_string oc "\n]";
    (match List.rev !scale_probe with
    | [] -> ()
    | rounds ->
      let nums sel =
        rounds |> List.map (fun r -> Printf.sprintf "%g" (sel r))
        |> String.concat ","
      in
      Printf.fprintf oc
        ",\n\"scale_probe\":{\"rounds\":%d,\"minor_words\":[%s],\"sweep_minor_words\":[%s]}"
        (List.length rounds) (nums fst) (nums snd));
    if !serve_json <> "" then
      Printf.fprintf oc ",\n\"serve\":%s" !serve_json;
    output_string oc "}\n";
    close_out oc;
    Printf.eprintf "wrote %s\n" !json_file
  end
