(** The feasible utility region [R_j]: a convex subset of the standard
    simplex [{ u in R^d : u >= 0, sum u_i = 1 }] cut by the preference
    halfspaces accumulated so far.

    Every question asked of the user adds up to [s - 1] halfspaces; the MinR
    and MinD heuristics rank candidate question sets by the expected
    post-answer width / diameter of this region (Algorithm 2), and Lemma 2
    prunes candidate tuples by checking emptiness of a cut of this region.
    All of those reduce to small LPs solved by {!Indq_lp.Lp}. *)

type t

val simplex : int -> t
(** [simplex d] is the initial region [R_0] for [d] attributes.
    Raises [Invalid_argument] if [d < 1]. *)

val dim : t -> int

val halfspaces : t -> Halfspace.t list
(** The accumulated cuts, most recent first (without the simplex itself). *)

val cut : t -> Halfspace.t -> t
(** [cut r h] is the region [r ∩ h].  O(1); feasibility is evaluated
    lazily. *)

val cut_many : t -> Halfspace.t list -> t

val is_empty : t -> bool
(** LP feasibility check.  Cached per region value. *)

val maximize : t -> float array -> (float * float array) option
(** [maximize r c] is [Some (value, argmax)] of [max c . v] over the region,
    or [None] when the region is empty.  The maximum always exists because
    the region is compact. *)

val minimize : t -> float array -> (float * float array) option

val contains : ?tol:float -> t -> float array -> bool
(** Membership: on the simplex and inside every cut. *)

val coordinate_bounds : t -> (float * float) array
(** [(lo_i, hi_i)] per coordinate via 2d LPs.  Raises [Invalid_argument] on
    an empty region. *)

val coordinate_profile : t -> (float * float) array * float array list
(** {!coordinate_bounds} plus the [2d] witness vertices where the extremes
    are attained (each a point of the region).  The witnesses let callers
    disprove "max over the region < 0" claims without further LPs. *)

val width : t -> float
(** Paper's MinR metric: the largest coordinate range
    [max_i (hi_i - lo_i)].  0 for a point; raises on an empty region. *)

val support_width : t -> float array -> float
(** [support_width r dir] is [max dir.v - min dir.v] over the region —
    the extent along [dir].  Raises on an empty region. *)

val diameter : ?extra_directions:float array array -> t -> float
(** Paper's MinD metric.  Estimated as the largest support width over a
    direction set: all coordinate axes, all pairwise axis differences
    [e_i - e_j], plus any [extra_directions].  This is a lower bound on the
    true diameter and exact whenever the diameter is realized along one of
    the probed directions; MinD only uses it to {i rank} candidate question
    sets.  Raises on an empty region. *)

val center_estimate : t -> float array
(** An interior-ish representative point: the average of the [2d]
    coordinate-extreme vertices.  Raises on an empty region. *)

val random_point : t -> Indq_util.Rng.t -> steps:int -> float array
(** Hit-and-run sampling from {!center_estimate}, staying on the simplex
    hyperplane.  More [steps] decorrelates from the center.  Raises on an
    empty region. *)

val to_lp_constraints : t -> Indq_lp.Lp.constr list
(** Simplex equality + cuts, for composing custom LPs over the region. *)
