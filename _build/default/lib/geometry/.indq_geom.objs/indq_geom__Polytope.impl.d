lib/geometry/polytope.ml: Array Float Halfspace Indq_linalg Indq_lp Indq_util List
