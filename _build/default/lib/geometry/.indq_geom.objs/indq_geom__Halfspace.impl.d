lib/geometry/halfspace.ml: Array Format Indq_linalg Indq_lp Indq_util
