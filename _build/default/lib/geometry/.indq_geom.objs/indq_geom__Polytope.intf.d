lib/geometry/polytope.mli: Halfspace Indq_lp Indq_util
