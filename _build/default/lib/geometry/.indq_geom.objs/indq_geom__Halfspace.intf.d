lib/geometry/halfspace.mli: Format Indq_lp
