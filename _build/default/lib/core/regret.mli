(** Regret ratios (Nanongkai et al., VLDB 2010), for Observation 2: the
    indistinguishability set [I(f, eps)] is exactly the set of tuples whose
    regret ratio against the optimum is at most [eps / (1 + eps)] — i.e.
    whose utility is at least [1/(1+eps)] of the optimum. *)

val tuple_regret :
  data:Indq_dataset.Dataset.t ->
  Indq_user.Utility.t ->
  Indq_dataset.Tuple.t ->
  float
(** [1 - (u . p) / (u . p_star)]; 0 for the optimal tuple.  Raises on an empty
    dataset or when the optimum has zero utility. *)

val set_regret :
  data:Indq_dataset.Dataset.t ->
  Indq_user.Utility.t ->
  Indq_dataset.Tuple.t list ->
  float
(** Regret ratio of a result set for a fixed utility: the regret of the best
    tuple in the set.  Raises on an empty subset. *)

val max_regret_ratio :
  data:Indq_dataset.Dataset.t ->
  sample_utilities:Indq_user.Utility.t list ->
  Indq_dataset.Tuple.t list ->
  float
(** The maximum of {!set_regret} over a sample of utility functions — the
    sampled version of the classic maximum regret ratio. *)

val matches_indistinguishability :
  eps:float ->
  Indq_user.Utility.t ->
  Indq_dataset.Dataset.t ->
  bool
(** Executable Observation 2: [I(f,eps)] equals the set of tuples with
    [tuple_regret <= eps/(1+eps)] (within float tolerance). *)
