(** The Theorem 1 construction: a database on which any deterministic
    real-tuples algorithm with no false negatives must emit false positives.

    For a target false-positive count [f > 1] and [eps > 0], let
    [m = ceil((1+eps) f)] and [D = { (i/m, 1 - i/m) : 0 <= i <= m }].
    Users [u = (1, 0)] and [u' = (1, 1/(1+eps))] rank every pair of tuples
    of [D] identically — no sequence of real-tuple comparisons separates
    them — yet [I(u, eps)] omits [p_0 .. p_{f-1}] while [I(u', eps)] is all
    of [D].  The test suite replays the paper's proof on these artifacts. *)

val m : f:int -> eps:float -> int
(** [ceil ((1+eps) * f)]. *)

val database : f:int -> eps:float -> Indq_dataset.Dataset.t
(** The [m+1] tuples [p_i = (i/m, 1-i/m)], ids [0..m].
    Raises [Invalid_argument] unless [f > 1] and [eps > 0]. *)

val utility_u : Indq_user.Utility.t
(** [(1, 0)]. *)

val utility_u' : eps:float -> Indq_user.Utility.t
(** [(1, 1/(1+eps))]. *)

val identical_rankings : f:int -> eps:float -> bool
(** Executable lemma: both users order every pair of database tuples the
    same way. *)

val forced_false_positives : f:int -> eps:float -> int
(** [|I(u', eps)| - |I(u, eps)|]: how many tuples a no-false-negative
    algorithm must over-report for user [u].  At least [f] by Theorem 1. *)
