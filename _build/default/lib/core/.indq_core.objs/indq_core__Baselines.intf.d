lib/core/baselines.mli: Format Indq_dataset Indq_user
