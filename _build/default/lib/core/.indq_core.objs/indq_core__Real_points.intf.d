lib/core/real_points.mli: Indq_dataset Indq_user Indq_util Region
