lib/core/region.ml: Indq_geom List
