lib/core/real_points.ml: Array Indq_dataset Indq_dominance Indq_user Indq_util Pruning Region
