lib/core/algo.ml: Indq_dataset Indq_user Indq_util Real_points Squeeze_u Squeeze_u2 String
