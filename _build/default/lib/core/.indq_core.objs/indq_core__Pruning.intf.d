lib/core/pruning.mli: Indq_dataset Region
