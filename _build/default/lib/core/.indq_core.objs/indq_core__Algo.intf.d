lib/core/algo.mli: Indq_dataset Indq_user Indq_util
