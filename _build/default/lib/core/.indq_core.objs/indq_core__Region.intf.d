lib/core/region.mli: Indq_geom
