lib/core/squeeze_u2.mli: Indq_dataset Indq_user
