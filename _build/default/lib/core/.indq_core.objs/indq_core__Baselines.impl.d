lib/core/baselines.ml: Array Float Format Hashtbl Indist Indq_dataset Indq_dominance Indq_user List
