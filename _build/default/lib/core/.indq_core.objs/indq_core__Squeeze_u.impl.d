lib/core/squeeze_u.ml: Array Float Indq_dataset Indq_dominance Indq_user Pruning
