lib/core/squeeze_u2.ml: Array Float Indq_dataset Indq_dominance Indq_linalg Indq_user Pruning Squeeze_u
