lib/core/impossibility.ml: Array Float Indist Indq_dataset
