lib/core/indist.mli: Indq_dataset Indq_user
