lib/core/session.mli: Algo Indq_dataset Indq_util
