lib/core/regret.mli: Indq_dataset Indq_user
