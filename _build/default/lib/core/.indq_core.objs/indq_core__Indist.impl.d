lib/core/indist.ml: Array Float Hashtbl Indq_dataset Indq_user
