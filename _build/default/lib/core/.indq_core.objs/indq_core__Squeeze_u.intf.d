lib/core/squeeze_u.mli: Indq_dataset Indq_user
