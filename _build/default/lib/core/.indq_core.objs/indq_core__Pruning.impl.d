lib/core/pruning.ml: Array Float Indq_dataset Indq_geom Indq_linalg List Region
