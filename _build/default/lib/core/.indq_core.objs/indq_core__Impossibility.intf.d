lib/core/impossibility.mli: Indq_dataset Indq_user
