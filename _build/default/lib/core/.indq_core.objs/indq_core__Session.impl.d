lib/core/session.ml: Algo Array Effect Indq_user
