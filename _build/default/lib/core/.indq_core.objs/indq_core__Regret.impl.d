lib/core/regret.ml: Array Float Hashtbl Indist Indq_dataset Indq_user List
