module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Utility = Indq_user.Utility

let check_eps eps =
  if eps <= 0. then invalid_arg "Indist: eps must be positive"

let indistinguishable ~eps u p1 p2 =
  check_eps eps;
  let v1 = Utility.value u p1 and v2 = Utility.value u p2 in
  v1 <= (1. +. eps) *. v2 && v2 <= (1. +. eps) *. v1

let query_exact ~eps u data =
  check_eps eps;
  if Dataset.size data = 0 then invalid_arg "Indist.query_exact: empty dataset";
  let _, best = Dataset.max_utility data u in
  (* p is in I iff (1+eps) u.p >= u.p* (the other direction is automatic
     since p* is optimal). *)
  Dataset.filter data (fun p ->
      (1. +. eps) *. Tuple.utility p u >= best)

let in_query ~eps u ~data p =
  check_eps eps;
  let _, best = Dataset.max_utility data u in
  (1. +. eps) *. Tuple.utility p u >= best

let alpha ~eps u ~data ~output =
  check_eps eps;
  if Dataset.size data = 0 then invalid_arg "Indist.alpha: empty dataset";
  let _, best = Dataset.max_utility data u in
  Array.fold_left
    (fun acc p ->
      Float.max acc (best -. ((1. +. eps) *. Tuple.utility p u)))
    0.
    (Dataset.tuples output)

let has_false_negatives ~eps u ~data ~output =
  let truth = query_exact ~eps u data in
  let present = Hashtbl.create (Dataset.size output) in
  Array.iter
    (fun p -> Hashtbl.replace present (Tuple.id p) ())
    (Dataset.tuples output);
  Array.exists
    (fun p -> not (Hashtbl.mem present (Tuple.id p)))
    (Dataset.tuples truth)

let optimum_fn ~f data =
  if Dataset.size data = 0 then invalid_arg "Indist: empty dataset";
  Array.fold_left
    (fun acc p -> Float.max acc (f (Tuple.values p)))
    neg_infinity (Dataset.tuples data)

let query_exact_fn ~eps f data =
  check_eps eps;
  let best = optimum_fn ~f data in
  Dataset.filter data (fun p -> (1. +. eps) *. f (Tuple.values p) >= best)

let alpha_fn ~eps f ~data ~output =
  check_eps eps;
  let best = optimum_fn ~f data in
  Array.fold_left
    (fun acc p -> Float.max acc (best -. ((1. +. eps) *. f (Tuple.values p))))
    0. (Dataset.tuples output)

let has_false_negatives_fn ~eps f ~data ~output =
  let truth = query_exact_fn ~eps f data in
  let present = Hashtbl.create (Dataset.size output) in
  Array.iter (fun p -> Hashtbl.replace present (Tuple.id p) ()) (Dataset.tuples output);
  Array.exists
    (fun p -> not (Hashtbl.mem present (Tuple.id p)))
    (Dataset.tuples truth)

let monotone_subset_check ~eps ~eps' u data =
  if not (eps' < eps) then invalid_arg "Indist.monotone_subset_check: need eps' < eps";
  let small = query_exact ~eps:eps' u data in
  let big = query_exact ~eps u data in
  let present = Hashtbl.create (Dataset.size big) in
  Array.iter (fun p -> Hashtbl.replace present (Tuple.id p) ()) (Dataset.tuples big);
  Array.for_all (fun p -> Hashtbl.mem present (Tuple.id p)) (Dataset.tuples small)
