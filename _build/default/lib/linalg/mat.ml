type t = { data : float array array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.create: non-positive size";
  { data = Array.init rows (fun _ -> Array.make cols 0.) }

let of_rows rows =
  if Array.length rows = 0 then invalid_arg "Mat.of_rows: no rows";
  let width = Array.length rows.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> width then invalid_arg "Mat.of_rows: ragged rows")
    rows;
  { data = Array.map Array.copy rows }

let rows m = Array.length m.data

let cols m = Array.length m.data.(0)

let get m i j = m.data.(i).(j)

let set m i j x = m.data.(i).(j) <- x

let row m i = Array.copy m.data.(i)

let col m j = Array.init (rows m) (fun i -> m.data.(i).(j))

let mul_vec m v =
  if Array.length v <> cols m then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init (rows m) (fun i -> Vec.dot m.data.(i) v)

let transpose m =
  let r = rows m and c = cols m in
  { data = Array.init c (fun j -> Array.init r (fun i -> m.data.(i).(j))) }

let copy m = { data = Array.map Array.copy m.data }

let swap_rows m i j =
  let tmp = m.data.(i) in
  m.data.(i) <- m.data.(j);
  m.data.(j) <- tmp

let scale_row m i c =
  let r = m.data.(i) in
  for j = 0 to Array.length r - 1 do
    r.(j) <- r.(j) *. c
  done

let add_scaled_row m ~src ~dst c =
  let s = m.data.(src) and d = m.data.(dst) in
  for j = 0 to Array.length d - 1 do
    d.(j) <- d.(j) +. (c *. s.(j))
  done

let pp ppf m =
  Array.iter
    (fun r ->
      Format.fprintf ppf "[";
      Array.iteri
        (fun j x ->
          if j > 0 then Format.fprintf ppf " ";
          Format.fprintf ppf "%8.4f" x)
        r;
      Format.fprintf ppf "]@.")
    m.data
