lib/linalg/vec.ml: Array Float Format Indq_util
