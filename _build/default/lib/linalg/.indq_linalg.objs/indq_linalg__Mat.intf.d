lib/linalg/mat.mli: Format
