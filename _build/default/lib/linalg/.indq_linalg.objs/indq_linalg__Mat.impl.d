lib/linalg/mat.ml: Array Format Vec
