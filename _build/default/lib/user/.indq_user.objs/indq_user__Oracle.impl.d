lib/user/oracle.ml: Array Float Indq_util List Utility
