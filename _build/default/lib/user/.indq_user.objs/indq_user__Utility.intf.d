lib/user/utility.mli: Indq_util
