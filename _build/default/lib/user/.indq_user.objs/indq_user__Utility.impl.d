lib/user/utility.ml: Array Float Indq_linalg Indq_util List
