lib/user/nonlinear.ml: Array Float Indq_util List Oracle Utility
