lib/user/oracle.mli: Indq_util Utility
