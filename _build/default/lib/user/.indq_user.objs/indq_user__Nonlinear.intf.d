lib/user/nonlinear.mli: Indq_util Oracle
