lib/experiments/report.ml: Array Experiments Float Indq_core Indq_util List Printf
