lib/experiments/experiments.mli: Indq_core Indq_dataset
