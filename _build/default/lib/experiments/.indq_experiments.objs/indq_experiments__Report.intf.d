lib/experiments/report.mli: Experiments Indq_util
