lib/experiments/experiments.ml: Array Hashtbl Indq_core Indq_dataset Indq_user Indq_util List Printf
