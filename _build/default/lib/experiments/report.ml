module Tabulate = Indq_util.Tabulate
module Algo = Indq_core.Algo

let algo_columns (sweep : Experiments.sweep) =
  List.map Algo.to_string sweep.Experiments.algorithms

let x_cell x =
  if Float.is_integer x && Float.abs x < 1e15 then
    string_of_int (int_of_float x)
  else Printf.sprintf "%g" x

let grid ~title ~value_of ~fmt (sweep : Experiments.sweep) =
  let t =
    Tabulate.create ~title
      ~columns:(sweep.Experiments.x_label :: algo_columns sweep)
  in
  List.iteri
    (fun xi x ->
      let row = Array.to_list sweep.Experiments.cells.(xi) in
      Tabulate.add_float_row ~fmt t (x_cell x) (List.map value_of row))
    sweep.Experiments.x_values;
  t

let alpha_table sweep =
  grid
    ~title:(sweep.Experiments.title ^ " -- alpha")
    ~value_of:(fun c -> c.Experiments.alpha_mean)
    ~fmt:Tabulate.float_cell sweep

let time_table sweep =
  grid
    ~title:(sweep.Experiments.title ^ " -- time (s)")
    ~value_of:(fun c -> c.Experiments.time_mean)
    ~fmt:Tabulate.seconds_cell sweep

let size_table sweep =
  grid
    ~title:(sweep.Experiments.title ^ " -- |output|")
    ~value_of:(fun c -> c.Experiments.output_size_mean)
    ~fmt:(fun x -> Printf.sprintf "%.1f" x)
    sweep

let false_negative_total (sweep : Experiments.sweep) =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc c -> acc + c.Experiments.false_negative_runs)
        acc row)
    0 sweep.Experiments.cells

let print_sweep ?(with_sizes = false) sweep =
  Tabulate.print (alpha_table sweep);
  Tabulate.print (time_table sweep);
  if with_sizes then Tabulate.print (size_table sweep);
  let fn = false_negative_total sweep in
  Printf.printf "false-negative audit: %d run(s) missed a tuple of I%s\n\n" fn
    (if fn = 0 then " [OK]" else " [VIOLATION]")

let print_time_sweep ~labels (sweep : Experiments.sweep) =
  let t =
    Tabulate.create
      ~title:sweep.Experiments.title
      ~columns:("dataset" :: algo_columns sweep)
  in
  List.iteri
    (fun xi label ->
      let row = Array.to_list sweep.Experiments.cells.(xi) in
      Tabulate.add_float_row ~fmt:Tabulate.seconds_cell t label
        (List.map (fun c -> c.Experiments.time_mean) row))
    labels;
  Tabulate.print t;
  let fn = false_negative_total sweep in
  Printf.printf "false-negative audit: %d run(s) missed a tuple of I%s\n\n" fn
    (if fn = 0 then " [OK]" else " [VIOLATION]")
