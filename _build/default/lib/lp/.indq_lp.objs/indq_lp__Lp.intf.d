lib/lp/lp.mli:
