lib/lp/lp.ml: Array Float List
