(** A dense two-phase primal simplex linear-programming solver.

    This is the workhorse behind every feasible-utility-region operation in
    the reproduction: emptiness checks after hyperplane updates (Section V),
    the Lemma 2 pruning test, and the width/diameter metrics of the MinR and
    MinD heuristics.  Problems here are small — [d <= 10] variables and a few
    dozen constraints — so a dense tableau with Bland's anti-cycling rule is
    both simple and fast.

    All structural variables are constrained to be non-negative ([x >= 0]),
    which matches utility vectors [u] in the non-negative orthant.  General
    constraints of the three relations [<=], [>=], [=] are supported via
    slack, surplus and artificial variables. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : float array;  (** one coefficient per structural variable *)
  relation : relation;
  rhs : float;
}
(** The linear constraint [coeffs . x  <relation>  rhs]. *)

type solution = {
  objective : float;  (** optimal objective value *)
  point : float array;  (** an optimal assignment of the structural variables *)
}

type outcome =
  | Optimal of solution
  | Infeasible  (** no [x >= 0] satisfies the constraints *)
  | Unbounded  (** the objective is unbounded over the feasible set *)

val constr : float array -> relation -> float -> constr
(** Convenience constructor. *)

val maximize :
  ?tol:float -> n:int -> objective:float array -> constr list -> outcome
(** [maximize ~n ~objective constraints] solves
    [max objective . x  s.t.  constraints, x >= 0] with [n] structural
    variables.  [tol] (default 1e-9) is the pivoting tolerance.  Raises
    [Invalid_argument] if any coefficient vector does not have length [n]. *)

val minimize :
  ?tol:float -> n:int -> objective:float array -> constr list -> outcome
(** Same, minimizing. *)

val feasible_point : ?tol:float -> n:int -> constr list -> float array option
(** [feasible_point ~n constraints] is [Some x] for some feasible [x >= 0],
    or [None] when the system is infeasible. *)

val is_feasible : ?tol:float -> n:int -> constr list -> bool
(** [feasible_point <> None]. *)
