(** Plain-text table and series rendering for the benchmark harness.

    The benchmark executable prints each reproduced figure as a series table
    (x value in the first column, one column per algorithm) and each
    reproduced table in the paper's row/column layout.  Everything goes
    through this module so the output format is uniform. *)

type t
(** A table under construction. *)

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] starts a table with a header row. *)

val add_row : t -> string list -> unit
(** Append a row.  Short rows are padded with empty cells; rows longer than
    the header raise [Invalid_argument]. *)

val add_float_row : ?fmt:(float -> string) -> t -> string -> float list -> unit
(** [add_float_row t label xs] appends [label] followed by formatted floats.
    Default format: [%.4f] with very small magnitudes shown as [0.0000]. *)

val render : t -> string
(** Render with column alignment, a title line, and a separator under the
    header. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val float_cell : float -> string
(** The default float formatting used by {!add_float_row}. *)

val seconds_cell : float -> string
(** Format a running time in seconds with two decimals (paper style). *)
