lib/util/floatx.mli:
