lib/util/tabulate.mli:
