lib/util/tabulate.ml: Float List Printf String
