lib/util/rng.mli:
