lib/util/timer.mli:
