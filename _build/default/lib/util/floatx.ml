let default_tolerance = 1e-9

let approx_equal ?(tol = default_tolerance) a b = Float.abs (a -. b) <= tol

let leq ?(tol = default_tolerance) a b = a <= b +. tol

let geq ?(tol = default_tolerance) a b = a >= b -. tol

let lt_strict ?(tol = default_tolerance) a b = a < b -. tol

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Floatx.clamp: lo > hi";
  if x < lo then lo else if x > hi then hi else x

let is_unit_box p =
  Array.for_all
    (fun x -> x >= -.default_tolerance && x <= 1. +. default_tolerance)
    p
