type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  let width = List.length t.columns in
  let len = List.length row in
  if len > width then invalid_arg "Tabulate.add_row: row longer than header";
  let padded =
    if len = width then row else row @ List.init (width - len) (fun _ -> "")
  in
  t.rows <- padded :: t.rows

let float_cell x =
  if Float.abs x < 5e-5 then "0.0000" else Printf.sprintf "%.4f" x

let seconds_cell x = Printf.sprintf "%.2f" x

let add_float_row ?(fmt = float_cell) t label xs =
  add_row t (label :: List.map fmt xs)

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let width = List.length t.columns in
  let col_width j =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row j with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init width col_width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun j cell ->
           let w = List.nth widths j in
           let pad = String.make (w - String.length cell) ' ' in
           if j = 0 then cell ^ pad else pad ^ cell)
         row)
  in
  let header = render_row t.columns in
  let sep = String.make (String.length header) '-' in
  let body = List.map render_row rows in
  String.concat "\n" (("== " ^ t.title ^ " ==") :: header :: sep :: body)

let print t =
  print_string (render t);
  print_newline ();
  print_newline ()
