let time f =
  let start = Sys.time () in
  let result = f () in
  let stop = Sys.time () in
  (result, stop -. start)

let time_seconds f =
  let _, s = time f in
  s
