(** Wall-clock timing for the running-time tables (Tables III and IV).

    Uses [Unix]-free [Sys.time]-independent monotonic-ish measurement via
    [Unix.gettimeofday]-equivalent: we rely on [Sys.time] for CPU seconds and
    [Unix] is avoided to keep the dependency footprint minimal, so this module
    reports CPU time, matching how the paper reports algorithm cost on an
    otherwise idle machine. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result and elapsed CPU seconds. *)

val time_seconds : (unit -> unit) -> float
(** Like {!time} but discards the result. *)
