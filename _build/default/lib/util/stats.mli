(** Summary statistics over float samples.

    Used by the experiment harness to average the approximation value α and
    running times over the paper's ten independent random utility functions
    (Section VII, "Parameter settings"). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator); 0 if n < 2 *)
  min : float;
  max : float;
  median : float;
}

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 when fewer than 2 points. *)

val median : float array -> float
(** Median (average of middle two for even length); 0 on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics.  Raises [Invalid_argument] on an empty array. *)

val summarize : float array -> summary
(** All of the above in one pass (plus sorting for the median). *)

val pp_summary : Format.formatter -> summary -> unit
(** Human-readable one-line rendering, e.g. for logs. *)
