(** Float helpers shared across the numeric code.

    All geometric predicates in this repository compare floats through these
    helpers with an explicit tolerance, never with [=]. *)

val default_tolerance : float
(** 1e-9; appropriate for the unit-box data used throughout. *)

val approx_equal : ?tol:float -> float -> float -> bool
(** Absolute-difference comparison: [|a - b| <= tol]. *)

val leq : ?tol:float -> float -> float -> bool
(** [leq a b] is [a <= b + tol]. *)

val geq : ?tol:float -> float -> float -> bool
(** [geq a b] is [a >= b - tol]. *)

val lt_strict : ?tol:float -> float -> float -> bool
(** [lt_strict a b] is [a < b - tol]: strictly less, beyond tolerance. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp a value into [\[lo, hi\]].  Requires [lo <= hi]. *)

val is_unit_box : float array -> bool
(** All coordinates within [\[-tol, 1+tol\]]. *)
