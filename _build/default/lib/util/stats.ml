type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let ys = sorted_copy xs in
    if n mod 2 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted_copy xs in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then ys.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (ys.(lo) *. (1. -. frac)) +. (ys.(hi) *. frac)
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then { n = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; median = 0. }
  else begin
    let ys = sorted_copy xs in
    {
      n;
      mean = mean xs;
      stddev = stddev xs;
      min = ys.(0);
      max = ys.(n - 1);
      median = median xs;
    }
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.6g sd=%.6g min=%.6g med=%.6g max=%.6g" s.n
    s.mean s.stddev s.min s.median s.max
