(** A database tuple: a stable identifier plus the user-selected attribute
    values (the [d] dimensions of Section III).

    Identifiers survive normalization, pruning and skyline filtering, so a
    query result can always be traced back to the original row. *)

type t = { id : int; values : float array }

val make : id:int -> float array -> t
(** Copies the value array. *)

val id : t -> int

val values : t -> float array
(** The live array — do not mutate.  Use {!get} for single coordinates. *)

val get : t -> int -> float

val dim : t -> int

val utility : t -> float array -> float
(** [utility p u] is the linear utility [u . p] (Section III). *)

val equal_id : t -> t -> bool

val compare_id : t -> t -> int

val pp : Format.formatter -> t -> unit
