lib/dataset/dataset.mli: Tuple
