lib/dataset/realistic.ml: Array Dataset Float Indq_util String
