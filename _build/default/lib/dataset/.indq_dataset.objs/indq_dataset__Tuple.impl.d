lib/dataset/tuple.ml: Array Format Indq_linalg Int
