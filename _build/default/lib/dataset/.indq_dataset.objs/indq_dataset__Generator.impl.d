lib/dataset/generator.ml: Array Dataset Float Indq_util String
