lib/dataset/realistic.mli: Dataset Indq_util
