lib/dataset/dataset.ml: Array Buffer Float Fun In_channel List Printf Seq String Tuple
