lib/dataset/tuple.mli: Format
