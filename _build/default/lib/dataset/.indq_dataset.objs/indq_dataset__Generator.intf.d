lib/dataset/generator.mli: Dataset Indq_util
