(** Simulated stand-ins for the paper's three real data sets.

    The originals (Island: 63,383 2-D geographic coordinates; NBA: 21,961
    4-D player/season records; House: 12,793 6-D household utility spends)
    are not available in this sealed environment, so we synthesize data sets
    with the same dimensionality, cardinality and correlation structure —
    the properties the algorithms actually interact with.  See DESIGN.md
    ("Substitutions") for the full rationale.  All outputs are normalized so
    the largest value is 1, exactly as the paper normalizes its inputs. *)

val island : ?n:int -> Indq_util.Rng.t -> Dataset.t
(** 2-D point cloud shaped like coastal arcs: a mixture of noisy circular
    arc segments plus background scatter.  Default [n = 63383]. *)

val nba : ?n:int -> Indq_util.Rng.t -> Dataset.t
(** 4-D positively correlated, right-skewed "player stats": a latent skill
    level drives four noisy per-stat outputs (think points, rebounds,
    assists, steals per season).  Default [n = 21961]. *)

val house : ?n:int -> Indq_util.Rng.t -> Dataset.t
(** 6-D household spending: correlated log-normal expenses, inverted so
    bigger is better (the paper inverts smaller-is-better attributes), which
    yields a mildly anti-correlated data set with a large skyline.
    Default [n = 12793]. *)

val by_name : string -> ?n:int -> Indq_util.Rng.t -> Dataset.t
(** ["island" | "nba" | "house"].  Raises [Invalid_argument] otherwise. *)

val default_size : string -> int
(** The paper's cardinality for a data-set name. *)
