type t = { id : int; values : float array }

let make ~id values = { id; values = Array.copy values }

let id t = t.id

let values t = t.values

let get t i = t.values.(i)

let dim t = Array.length t.values

let utility t u = Indq_linalg.Vec.dot t.values u

let equal_id a b = a.id = b.id

let compare_id a b = Int.compare a.id b.id

let pp ppf t =
  Format.fprintf ppf "#%d%a" t.id Indq_linalg.Vec.pp t.values
