(** Synthetic workload generators.

    Reimplementation of the classic skyline-benchmark generator of Borzsony,
    Kossmann and Stocker (ICDE 2001), which the paper uses for its synthetic
    experiments — in particular the {b anti-correlated} distribution, whose
    large skylines stress-test the algorithms (Figures 6 and 7). *)

val independent : Indq_util.Rng.t -> n:int -> d:int -> Dataset.t
(** Uniform i.i.d. values in [0,1]^d. *)

val correlated : Indq_util.Rng.t -> n:int -> d:int -> Dataset.t
(** Points concentrated around the main diagonal: a point that is good in
    one dimension tends to be good in the others.  Tiny skylines. *)

val anti_correlated : Indq_util.Rng.t -> n:int -> d:int -> Dataset.t
(** Points concentrated around the hyperplane [sum x_i = d/2]: a point good
    in one dimension tends to be bad in the others.  Large skylines. *)

val by_name : string -> Indq_util.Rng.t -> n:int -> d:int -> Dataset.t
(** ["independent" | "correlated" | "anti_correlated"] (also accepts
    ["anti-correlated"]).  Raises [Invalid_argument] on unknown names. *)
