type t = { lo : float array; hi : float array }

let make ~lo ~hi =
  let d = Array.length lo in
  if d = 0 || Array.length hi <> d then invalid_arg "Rect.make: bad corners";
  for i = 0 to d - 1 do
    if lo.(i) > hi.(i) then invalid_arg "Rect.make: lo > hi"
  done;
  { lo = Array.copy lo; hi = Array.copy hi }

let of_point p = make ~lo:p ~hi:p

let dim r = Array.length r.lo

let lo r = Array.copy r.lo

let hi r = Array.copy r.hi

let intersects a b =
  let d = dim a in
  if dim b <> d then invalid_arg "Rect.intersects: dimension mismatch";
  let ok = ref true in
  for i = 0 to d - 1 do
    if a.lo.(i) > b.hi.(i) || b.lo.(i) > a.hi.(i) then ok := false
  done;
  !ok

let contains_point r p =
  let d = dim r in
  if Array.length p <> d then invalid_arg "Rect.contains_point: dimension mismatch";
  let ok = ref true in
  for i = 0 to d - 1 do
    if p.(i) < r.lo.(i) || p.(i) > r.hi.(i) then ok := false
  done;
  !ok

let contains_rect ~outer ~inner =
  let d = dim outer in
  if dim inner <> d then invalid_arg "Rect.contains_rect: dimension mismatch";
  let ok = ref true in
  for i = 0 to d - 1 do
    if inner.lo.(i) < outer.lo.(i) || inner.hi.(i) > outer.hi.(i) then ok := false
  done;
  !ok

let union a b =
  let d = dim a in
  if dim b <> d then invalid_arg "Rect.union: dimension mismatch";
  {
    lo = Array.init d (fun i -> Float.min a.lo.(i) b.lo.(i));
    hi = Array.init d (fun i -> Float.max a.hi.(i) b.hi.(i));
  }

let union_many = function
  | [] -> invalid_arg "Rect.union_many: empty list"
  | r :: rest -> List.fold_left union r rest

let area r =
  let acc = ref 1. in
  for i = 0 to dim r - 1 do
    acc := !acc *. (r.hi.(i) -. r.lo.(i))
  done;
  !acc

let margin r =
  let acc = ref 0. in
  for i = 0 to dim r - 1 do
    acc := !acc +. (r.hi.(i) -. r.lo.(i))
  done;
  !acc

let enlargement r extra = area (union r extra) -. area r

let above_corner p ~upper =
  let d = Array.length p in
  if Array.length upper <> d then invalid_arg "Rect.above_corner: dimension mismatch";
  let lo = Array.init d (fun i -> Float.min p.(i) upper.(i)) in
  { lo; hi = Array.copy upper }

let pp ppf r =
  Format.fprintf ppf "[%a .. %a]" Indq_linalg.Vec.pp r.lo Indq_linalg.Vec.pp r.hi
