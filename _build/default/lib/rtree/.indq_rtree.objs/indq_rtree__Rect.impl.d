lib/rtree/rect.ml: Array Float Format Indq_linalg List
