lib/rtree/rtree.ml: Array Float List Rect
