lib/rtree/rtree.mli: Rect
