lib/rtree/rect.mli: Format
