lib/dominance/dominance.mli: Indq_dataset
