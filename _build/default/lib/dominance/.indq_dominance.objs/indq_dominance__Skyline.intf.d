lib/dominance/skyline.mli: Indq_dataset
