lib/dominance/dominance.ml: Array Indq_dataset
