lib/dominance/skyline.ml: Array Dominance Float Fun Hashtbl Indq_dataset Indq_linalg Indq_rtree List
