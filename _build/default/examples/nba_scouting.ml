(* Scouting under sloppy judgment: a scout compares NBA-like player seasons
   but cannot reliably tell apart players within ~5% of each other
   (delta = 0.05).  Squeeze-u2 (Algorithm 3) widens its inference to stay
   sound under such errors.  We sweep the scout's true sloppiness and show
   the paper's Section VI behaviour: sound at small delta, degrading
   smoothly as delta grows past 1%.

   Run with:  dune exec examples/nba_scouting.exe *)

module Dataset = Indq_dataset.Dataset
module Realistic = Indq_dataset.Realistic
module Indist = Indq_core.Indist
module Squeeze_u2 = Indq_core.Squeeze_u2
module Oracle = Indq_user.Oracle
module Utility = Indq_user.Utility
module Rng = Indq_util.Rng
module Stats = Indq_util.Stats
module Tabulate = Indq_util.Tabulate

let () =
  let rng = Rng.create 11 in
  let players = Realistic.nba ~n:5000 rng in
  let d = Dataset.dim players in
  let eps = 0.05 in
  Printf.printf
    "Scouting %d player-seasons across %d stats (simulated NBA-like data).\n\n"
    (Dataset.size players) d;

  let table =
    Tabulate.create
      ~title:"Squeeze-u2 vs scout sloppiness (s=d, q=3d, eps=0.05, 10 scouts each)"
      ~columns:[ "delta"; "alpha(mean)"; "|output|(mean)"; "false-negative runs" ]
  in
  List.iter
    (fun delta ->
      let trials = 10 in
      let alphas = Array.make trials 0. in
      let sizes = Array.make trials 0. in
      let fn = ref 0 in
      for t = 0 to trials - 1 do
        let trial_rng = Rng.create ((t * 7919) + 13) in
        let scout_taste = Utility.random trial_rng ~d in
        let oracle =
          if delta > 0. then
            Oracle.with_error ~delta ~rng:(Rng.split trial_rng) scout_taste
          else Oracle.exact scout_taste
        in
        let result =
          Squeeze_u2.run ~data:players ~s:d ~q:(3 * d) ~eps ~delta ~oracle ()
        in
        alphas.(t) <-
          Indist.alpha ~eps scout_taste ~data:players
            ~output:result.Squeeze_u2.output;
        sizes.(t) <- float_of_int (Dataset.size result.Squeeze_u2.output);
        if
          Indist.has_false_negatives ~eps scout_taste ~data:players
            ~output:result.Squeeze_u2.output
        then incr fn
      done;
      Tabulate.add_row table
        [
          Printf.sprintf "%.3f" delta;
          Printf.sprintf "%.4f" (Stats.mean alphas);
          Printf.sprintf "%.1f" (Stats.mean sizes);
          string_of_int !fn;
        ])
    [ 0.; 0.001; 0.01; 0.05; 0.1 ];
  Tabulate.print table;
  print_endline
    "Reading the table: alpha stays near zero for small delta and the";
  print_endline
    "false-negative column stays 0 -- the widened bounds never discard a";
  print_endline
    "player the scout would actually want, at the cost of a larger shortlist."
