(* Epsilon refinement (Observation 4): I(f, eps') is a subset of I(f, eps)
   whenever eps' < eps, so a user who finds the result set too large can
   shrink eps and re-query WITHIN the previous answer instead of the whole
   database — no interaction or computation is wasted.

   This example starts wide (eps = 0.5), then halves eps repeatedly,
   re-querying only the previous output each time, and verifies the chain
   of answers matches querying the full data set from scratch.

   Run with:  dune exec examples/epsilon_refinement.exe *)

module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Generator = Indq_dataset.Generator
module Indist = Indq_core.Indist
module Utility = Indq_user.Utility
module Rng = Indq_util.Rng

let ids data = List.sort compare (List.map Tuple.id (Dataset.to_list data))

let () =
  let rng = Rng.create 5 in
  let data = Generator.anti_correlated rng ~n:20_000 ~d:4 in
  let u = Utility.random rng ~d:4 in
  Printf.printf "database: %d anti-correlated tuples, d = 4\n\n" (Dataset.size data);

  let eps_chain = [ 0.5; 0.25; 0.1; 0.05; 0.01 ] in
  let previous = ref data in
  List.iter
    (fun eps ->
      (* Refine within the previous answer... *)
      let refined = Indist.query_exact ~eps u !previous in
      (* ...and check it equals a fresh full-database query. *)
      let from_scratch = Indist.query_exact ~eps u data in
      assert (ids refined = ids from_scratch);
      Printf.printf
        "eps = %-5g -> %6d tuples (refined from the previous %d; matches full re-query)\n"
        eps (Dataset.size refined) (Dataset.size !previous);
      previous := refined)
    eps_chain;

  print_newline ();
  Printf.printf
    "The %g-set ended with %d tuple(s); the user picks a favorite from there\n"
    (List.nth eps_chain (List.length eps_chain - 1))
    (Dataset.size !previous);
  print_endline
    "having never re-examined a tuple that an earlier round already excluded."
