examples/quickstart.ml: Array Indq_core Indq_dataset Indq_user Printf
