examples/car_shopping.mli:
