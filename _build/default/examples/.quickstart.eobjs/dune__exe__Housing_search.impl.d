examples/housing_search.ml: Array Indq_core Indq_dataset Indq_dominance Indq_user Indq_util Printf
