examples/epsilon_refinement.ml: Indq_core Indq_dataset Indq_user Indq_util List Printf
