examples/nba_scouting.mli:
