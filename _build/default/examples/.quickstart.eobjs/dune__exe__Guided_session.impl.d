examples/guided_session.ml: Array Indq_core Indq_dataset Indq_linalg Indq_user Indq_util Printf
