examples/guided_session.mli:
