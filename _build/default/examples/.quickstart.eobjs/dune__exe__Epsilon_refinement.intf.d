examples/epsilon_refinement.mli:
