examples/baseline_comparison.mli:
