examples/quickstart.mli:
