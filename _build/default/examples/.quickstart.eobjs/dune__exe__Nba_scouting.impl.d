examples/nba_scouting.ml: Array Indq_core Indq_dataset Indq_user Indq_util List Printf
