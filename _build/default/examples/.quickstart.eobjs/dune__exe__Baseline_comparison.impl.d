examples/baseline_comparison.ml: Array Float Indq_core Indq_dataset Indq_user Indq_util List Printf
