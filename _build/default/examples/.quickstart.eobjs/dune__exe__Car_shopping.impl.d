examples/car_shopping.ml: Array Float Indq_core Indq_dataset Indq_linalg Indq_user Indq_util List Printf
