examples/housing_search.mli:
