(* Embedding the query in an application: the Session API.

   Algo.run owns its interaction loop, which suits batch simulation; a GUI
   or web service instead wants to receive one question at a time, persist
   state between user visits, and resume.  Session inverts control with
   OCaml 5 effects: the unchanged algorithm runs as a coroutine that
   suspends at each question.

   Here a simulated shopper answers a Squeeze-u session one question at a
   time while the application inspects and logs every round.

   Run with:  dune exec examples/guided_session.exe *)

module Dataset = Indq_dataset.Dataset
module Generator = Indq_dataset.Generator
module Algo = Indq_core.Algo
module Session = Indq_core.Session
module Indist = Indq_core.Indist
module Utility = Indq_user.Utility
module Rng = Indq_util.Rng

let () =
  let rng = Rng.create 31 in
  let data = Generator.independent rng ~n:2000 ~d:3 in
  let shopper = Utility.random rng ~d:3 in
  let config = Algo.default_config ~d:3 in

  Printf.printf "starting a %s session (s=%d, q=%d, eps=%.2f)\n\n"
    (Algo.to_string Algo.Squeeze_u) config.Algo.s config.Algo.q config.Algo.eps;
  let session = Session.start Algo.Squeeze_u config ~data ~rng:(Rng.split rng) in

  let rec drive () =
    match Session.current session with
    | Session.Asking options ->
      Printf.printf "question %d - the application renders %d options:\n"
        (Session.questions_asked session + 1)
        (Array.length options);
      Array.iteri
        (fun i p -> Printf.printf "    [%d] %s\n" (i + 1) (Indq_linalg.Vec.to_string p))
        options;
      (* In a real application this is where you return to the event loop
         and wait; the session object holds all the state.  Our shopper
         answers immediately. *)
      let pick = Utility.best_index shopper options in
      Printf.printf "    -> shopper picks [%d]\n\n" (pick + 1);
      Session.answer session pick;
      drive ()
    | Session.Finished result -> result
  in
  let result = drive () in

  Printf.printf "session complete: %d questions, %d tuples in the answer\n"
    result.Algo.questions_used
    (Dataset.size result.Algo.output);
  Printf.printf "alpha = %.6f, contains all of I: %b\n"
    (Indist.alpha ~eps:config.Algo.eps shopper ~data ~output:result.Algo.output)
    (not
       (Indist.has_false_negatives ~eps:config.Algo.eps shopper ~data
          ~output:result.Algo.output))
