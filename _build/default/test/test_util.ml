(* Tests for the util substrate: RNG determinism/uniformity, statistics,
   float helpers, table rendering. *)

module Rng = Indq_util.Rng
module Stats = Indq_util.Stats
module Floatx = Indq_util.Floatx
module Tabulate = Indq_util.Tabulate

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_rng_int_covers_all_values () =
  let rng = Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_uniform_mean () =
  let rng = Rng.create 3 in
  let n = 20000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.uniform rng
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_rng_gaussian_moments () =
  let rng = Rng.create 5 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian ~mu:2. ~sigma:3. rng) in
  let s = Stats.summarize xs in
  Alcotest.(check bool) "mean near 2" true (Float.abs (s.mean -. 2.) < 0.1);
  Alcotest.(check bool) "sd near 3" true (Float.abs (s.stddev -. 3.) < 0.1)

let test_rng_split_independence () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  (* The child stream must differ from the parent's continuation. *)
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.bits64 parent <> Rng.bits64 child then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_rng_copy () =
  let a = Rng.create 4 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_sample_without_replacement () =
  let rng = Rng.create 21 in
  let arr = Array.init 10 Fun.id in
  let s = Rng.sample_without_replacement rng 4 arr in
  Alcotest.(check int) "size" 4 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 3 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done

let test_sample_full () =
  let rng = Rng.create 22 in
  let arr = [| 1; 2; 3 |] in
  let s = Rng.sample_without_replacement rng 3 arr in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" [| 1; 2; 3 |] sorted

let test_direction_is_unit () =
  let rng = Rng.create 30 in
  for _ = 1 to 50 do
    let v = Rng.direction rng 4 in
    let norm = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0. v) in
    Alcotest.(check (float 1e-9)) "unit norm" 1.0 norm
  done

let test_shuffle_is_permutation () =
  let rng = Rng.create 13 in
  let arr = Array.init 20 Fun.id in
  let copy = Array.copy arr in
  Rng.shuffle_in_place rng copy;
  Array.sort compare copy;
  Alcotest.(check (array int)) "permutation" arr copy

let test_stats_mean_stddev () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Alcotest.(check (float 1e-9)) "mean" 5. (Stats.mean xs);
  (* Sample sd with n-1 denominator: sqrt(32/7). *)
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (32. /. 7.)) (Stats.stddev xs)

let test_stats_median () =
  Alcotest.(check (float 1e-9)) "odd" 3. (Stats.median [| 5.; 3.; 1. |]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  Alcotest.(check (float 1e-9)) "empty" 0. (Stats.median [||])

let test_stats_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p50" 3. (Stats.percentile xs 50.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.percentile xs 100.);
  Alcotest.(check (float 1e-9)) "p25" 2. (Stats.percentile xs 25.)

let test_stats_summary () =
  let s = Stats.summarize [| 1.; 2.; 3. |] in
  Alcotest.(check int) "n" 3 s.n;
  Alcotest.(check (float 1e-9)) "min" 1. s.min;
  Alcotest.(check (float 1e-9)) "max" 3. s.max;
  Alcotest.(check (float 1e-9)) "median" 2. s.median

let test_floatx () =
  Alcotest.(check bool) "approx eq" true (Floatx.approx_equal 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "not approx eq" false (Floatx.approx_equal 1.0 1.1);
  Alcotest.(check bool) "leq" true (Floatx.leq 1.0 1.0);
  Alcotest.(check bool) "lt_strict false on equal" false (Floatx.lt_strict 1.0 1.0);
  Alcotest.(check bool) "lt_strict true" true (Floatx.lt_strict 1.0 2.0);
  Alcotest.(check (float 0.)) "clamp low" 0. (Floatx.clamp ~lo:0. ~hi:1. (-5.));
  Alcotest.(check (float 0.)) "clamp high" 1. (Floatx.clamp ~lo:0. ~hi:1. 5.);
  Alcotest.(check (float 0.)) "clamp mid" 0.5 (Floatx.clamp ~lo:0. ~hi:1. 0.5)

let test_tabulate_render () =
  let t = Tabulate.create ~title:"demo" ~columns:[ "x"; "a"; "b" ] in
  Tabulate.add_float_row t "1" [ 0.5; 0.25 ];
  Tabulate.add_row t [ "2"; "x" ];
  let s = Tabulate.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 3 = "== ");
  let contains haystack needle =
    let hl = String.length haystack and nl = String.length needle in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "contains value" true (contains s "0.5000");
  Alcotest.(check bool) "pads short row" true (contains s "2")

let test_tabulate_row_too_long () =
  let t = Tabulate.create ~title:"t" ~columns:[ "only" ] in
  Alcotest.check_raises "too long"
    (Invalid_argument "Tabulate.add_row: row longer than header") (fun () ->
      Tabulate.add_row t [ "a"; "b" ])

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int covers values" `Quick test_rng_int_covers_all_values;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_sample_without_replacement;
          Alcotest.test_case "sample full" `Quick test_sample_full;
          Alcotest.test_case "direction unit" `Quick test_direction_is_unit;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
      ("floatx", [ Alcotest.test_case "predicates" `Quick test_floatx ]);
      ( "tabulate",
        [
          Alcotest.test_case "render" `Quick test_tabulate_render;
          Alcotest.test_case "row too long" `Quick test_tabulate_row_too_long;
        ] );
    ]
