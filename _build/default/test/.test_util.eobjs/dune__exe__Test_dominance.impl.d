test/test_dominance.ml: Alcotest Array Indq_dataset Indq_dominance Indq_util List QCheck2 QCheck_alcotest
