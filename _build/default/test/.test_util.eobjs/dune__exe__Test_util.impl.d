test/test_util.ml: Alcotest Array Float Fun Indq_util String
