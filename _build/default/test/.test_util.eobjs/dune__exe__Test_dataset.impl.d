test/test_dataset.ml: Alcotest Array Float Indq_core Indq_dataset Indq_util List
