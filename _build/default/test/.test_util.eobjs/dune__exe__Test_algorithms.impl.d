test/test_algorithms.ml: Alcotest Array Float Indq_core Indq_dataset Indq_dominance Indq_geom Indq_linalg Indq_user Indq_util List Printf QCheck2 QCheck_alcotest
