test/test_user.mli:
