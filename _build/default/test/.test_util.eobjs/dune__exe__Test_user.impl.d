test/test_user.ml: Alcotest Array Float Indq_core Indq_dataset Indq_user Indq_util List QCheck2 QCheck_alcotest
