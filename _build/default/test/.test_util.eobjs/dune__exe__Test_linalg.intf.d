test/test_linalg.mli:
