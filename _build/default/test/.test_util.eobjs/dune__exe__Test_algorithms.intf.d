test/test_algorithms.mli:
