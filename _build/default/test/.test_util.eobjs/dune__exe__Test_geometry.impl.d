test/test_geometry.ml: Alcotest Array Indq_geom Indq_linalg Indq_util QCheck2 QCheck_alcotest
