test/test_lp.ml: Alcotest Array Float Indq_lp Indq_util List QCheck2 QCheck_alcotest
