test/test_dominance.mli:
