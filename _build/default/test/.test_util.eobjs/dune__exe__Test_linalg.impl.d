test/test_linalg.ml: Alcotest Array Float Indq_linalg Indq_util QCheck2 QCheck_alcotest
