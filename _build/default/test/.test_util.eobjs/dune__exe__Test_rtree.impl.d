test/test_rtree.ml: Alcotest Array Float Indq_rtree Indq_util List QCheck2 QCheck_alcotest
