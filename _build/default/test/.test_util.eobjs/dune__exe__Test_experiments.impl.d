test/test_experiments.ml: Alcotest Array Indq_core Indq_dataset Indq_experiments Indq_user Indq_util List String
