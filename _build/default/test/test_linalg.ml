(* Tests for dense vector/matrix operations. *)

module Vec = Indq_linalg.Vec
module Mat = Indq_linalg.Mat
module Rng = Indq_util.Rng

let vecf = Alcotest.(array (float 1e-9))

let test_basis () =
  Alcotest.check vecf "basis" [| 0.; 1.; 0. |] (Vec.basis 3 1);
  Alcotest.check_raises "out of range" (Invalid_argument "Vec.basis: index out of range")
    (fun () -> ignore (Vec.basis 3 3))

let test_dot () =
  Alcotest.(check (float 1e-9)) "dot" 32. (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  Alcotest.check_raises "mismatch" (Invalid_argument "Vec.dot: dimension mismatch")
    (fun () -> ignore (Vec.dot [| 1. |] [| 1.; 2. |]))

let test_arith () =
  Alcotest.check vecf "add" [| 5.; 7. |] (Vec.add [| 1.; 2. |] [| 4.; 5. |]);
  Alcotest.check vecf "sub" [| -3.; -3. |] (Vec.sub [| 1.; 2. |] [| 4.; 5. |]);
  Alcotest.check vecf "scale" [| 2.; 4. |] (Vec.scale 2. [| 1.; 2. |]);
  Alcotest.check vecf "axpy" [| 6.; 9. |] (Vec.axpy 2. [| 1.; 2. |] [| 4.; 5. |])

let test_norms () =
  Alcotest.(check (float 1e-9)) "norm2" 5. (Vec.norm2 [| 3.; 4. |]);
  Alcotest.(check (float 1e-9)) "norm_inf" 4. (Vec.norm_inf [| 3.; -4. |]);
  Alcotest.(check (float 1e-9)) "dist2" 5. (Vec.dist2 [| 0.; 0. |] [| 3.; 4. |]);
  Alcotest.check vecf "normalize" [| 0.6; 0.8 |] (Vec.normalize [| 3.; 4. |]);
  Alcotest.check_raises "normalize zero" (Invalid_argument "Vec.normalize: zero vector")
    (fun () -> ignore (Vec.normalize [| 0.; 0. |]))

let test_extrema () =
  Alcotest.(check (float 1e-9)) "sum" 6. (Vec.sum [| 1.; 2.; 3. |]);
  Alcotest.(check (float 1e-9)) "max" 3. (Vec.max_coord [| 1.; 3.; 2. |]);
  Alcotest.(check (float 1e-9)) "min" 1. (Vec.min_coord [| 1.; 3.; 2. |]);
  Alcotest.(check int) "argmax" 1 (Vec.argmax [| 1.; 3.; 2. |]);
  Alcotest.(check int) "argmax first tie" 0 (Vec.argmax [| 3.; 3.; 2. |])

let test_approx_equal () =
  Alcotest.(check bool) "equal" true
    (Vec.approx_equal [| 1.; 2. |] [| 1. +. 1e-12; 2. |]);
  Alcotest.(check bool) "different dims" false (Vec.approx_equal [| 1. |] [| 1.; 2. |]);
  Alcotest.(check bool) "different values" false
    (Vec.approx_equal [| 1.; 2. |] [| 1.; 2.1 |])

let test_mat_basic () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check int) "rows" 2 (Mat.rows m);
  Alcotest.(check int) "cols" 2 (Mat.cols m);
  Alcotest.(check (float 1e-9)) "get" 3. (Mat.get m 1 0);
  Alcotest.check vecf "row" [| 3.; 4. |] (Mat.row m 1);
  Alcotest.check vecf "col" [| 2.; 4. |] (Mat.col m 1);
  Alcotest.check vecf "mul_vec" [| 5.; 11. |] (Mat.mul_vec m [| 1.; 2. |])

let test_mat_transpose () =
  let m = Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let mt = Mat.transpose m in
  Alcotest.(check int) "rows" 3 (Mat.rows mt);
  Alcotest.check vecf "row of transpose" [| 2.; 5. |] (Mat.row mt 1)

let test_mat_row_ops () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Mat.swap_rows m 0 1;
  Alcotest.check vecf "swapped" [| 3.; 4. |] (Mat.row m 0);
  Mat.scale_row m 0 2.;
  Alcotest.check vecf "scaled" [| 6.; 8. |] (Mat.row m 0);
  Mat.add_scaled_row m ~src:0 ~dst:1 1.;
  Alcotest.check vecf "added" [| 7.; 10. |] (Mat.row m 1)

let test_mat_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_rows: ragged rows")
    (fun () -> ignore (Mat.of_rows [| [| 1. |]; [| 1.; 2. |] |]))

let prop_dot_symmetric =
  QCheck2.Test.make ~count:100 ~name:"dot is symmetric"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 6 in
      let a = Array.init d (fun _ -> Rng.in_range rng (-10.) 10.) in
      let b = Array.init d (fun _ -> Rng.in_range rng (-10.) 10.) in
      Float.abs (Vec.dot a b -. Vec.dot b a) < 1e-9)

let prop_triangle_inequality =
  QCheck2.Test.make ~count:100 ~name:"triangle inequality"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 6 in
      let a = Array.init d (fun _ -> Rng.in_range rng (-10.) 10.) in
      let b = Array.init d (fun _ -> Rng.in_range rng (-10.) 10.) in
      Vec.norm2 (Vec.add a b) <= Vec.norm2 a +. Vec.norm2 b +. 1e-9)

let prop_transpose_involution =
  QCheck2.Test.make ~count:50 ~name:"transpose . transpose = id"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let r = 1 + Rng.int rng 4 and c = 1 + Rng.int rng 4 in
      let m =
        Mat.of_rows
          (Array.init r (fun _ -> Array.init c (fun _ -> Rng.uniform rng)))
      in
      let mtt = Mat.transpose (Mat.transpose m) in
      let same = ref true in
      for i = 0 to r - 1 do
        for j = 0 to c - 1 do
          if Float.abs (Mat.get m i j -. Mat.get mtt i j) > 0. then same := false
        done
      done;
      !same)

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basis" `Quick test_basis;
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "norms" `Quick test_norms;
          Alcotest.test_case "extrema" `Quick test_extrema;
          Alcotest.test_case "approx equal" `Quick test_approx_equal;
        ] );
      ( "mat",
        [
          Alcotest.test_case "basic" `Quick test_mat_basic;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "row ops" `Quick test_mat_row_ops;
          Alcotest.test_case "ragged" `Quick test_mat_ragged;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_dot_symmetric;
          QCheck_alcotest.to_alcotest prop_triangle_inequality;
          QCheck_alcotest.to_alcotest prop_transpose_involution;
        ] );
    ]
